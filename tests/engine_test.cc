#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/index_factory.h"
#include "engine/database.h"
#include "engine/driver.h"
#include "engine/operators.h"
#include "test_util.h"
#include "workload/workload.h"

namespace adaptidx {
namespace {

// ------------------------------------------------------------- Workload

TEST(WorkloadTest, GeneratesRequestedCount) {
  WorkloadGenerator gen(0, 10000);
  WorkloadOptions opts;
  opts.num_queries = 64;
  auto queries = gen.Generate(opts);
  EXPECT_EQ(queries.size(), 64u);
}

TEST(WorkloadTest, SelectivityControlsWidth) {
  WorkloadGenerator gen(0, 10000);
  WorkloadOptions opts;
  opts.num_queries = 100;
  opts.selectivity = 0.1;
  for (const auto& q : gen.Generate(opts)) {
    EXPECT_EQ(q.hi - q.lo, 1000);
    EXPECT_GE(q.lo, 0);
    EXPECT_LE(q.hi, 10000);
  }
}

TEST(WorkloadTest, TinySelectivityYieldsWidthOne) {
  WorkloadGenerator gen(0, 1000);
  WorkloadOptions opts;
  opts.selectivity = 0.0000001;
  opts.num_queries = 10;
  for (const auto& q : gen.Generate(opts)) EXPECT_EQ(q.hi - q.lo, 1);
}

TEST(WorkloadTest, FullSelectivityCoversDomain) {
  WorkloadGenerator gen(0, 1000);
  WorkloadOptions opts;
  opts.selectivity = 1.0;
  opts.num_queries = 5;
  for (const auto& q : gen.Generate(opts)) {
    EXPECT_EQ(q.lo, 0);
    EXPECT_EQ(q.hi, 1000);
  }
}

TEST(WorkloadTest, DeterministicBySeed) {
  WorkloadGenerator gen(0, 10000);
  WorkloadOptions opts;
  opts.num_queries = 50;
  opts.seed = 9;
  auto a = gen.Generate(opts);
  auto b = gen.Generate(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
  opts.seed = 10;
  auto c = gen.Generate(opts);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) any_diff |= a[i].lo != c[i].lo;
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, SequentialSlidesLeftToRight) {
  WorkloadGenerator gen(0, 10000);
  WorkloadOptions opts;
  opts.num_queries = 20;
  opts.distribution = QueryDistribution::kSequential;
  opts.selectivity = 0.01;
  auto queries = gen.Generate(opts);
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_GE(queries[i].lo, queries[i - 1].lo);
  }
  EXPECT_EQ(queries.front().lo, 0);
  EXPECT_EQ(queries.back().hi, 10000);
}

TEST(WorkloadTest, SkewedConcentratesLow) {
  WorkloadGenerator gen(0, 100000);
  WorkloadOptions opts;
  opts.num_queries = 2000;
  opts.distribution = QueryDistribution::kSkewed;
  opts.skew = 0.9;
  opts.selectivity = 0.001;
  auto queries = gen.Generate(opts);
  size_t low = 0;
  for (const auto& q : queries) low += (q.lo < 10000);
  EXPECT_GT(low, queries.size() / 4);
}

TEST(WorkloadTest, TypePropagates) {
  WorkloadGenerator gen(0, 100);
  WorkloadOptions opts;
  opts.type = QueryType::kSum;
  opts.num_queries = 3;
  for (const auto& q : gen.Generate(opts)) {
    EXPECT_EQ(q.type, QueryType::kSum);
  }
}

TEST(WorkloadTest, ToStringNames) {
  EXPECT_EQ(ToString(QueryType::kCount), "count");
  EXPECT_EQ(ToString(QueryType::kSum), "sum");
  EXPECT_EQ(ToString(QueryType::kMinMax), "min-max");
  EXPECT_EQ(ToString(QueryDistribution::kUniform), "uniform");
  EXPECT_EQ(ToString(QueryDistribution::kSkewed), "skewed");
  EXPECT_EQ(ToString(QueryDistribution::kSequential), "sequential");
}

// ------------------------------------------------------------ Operators

TEST(OperatorsTest, ExecuteQueryDispatchesOnType) {
  Column col = Column::Sequential("A", 100);
  IndexConfig config;
  config.method = IndexMethod::kScan;
  auto index = MakeIndex(&col, config);
  QueryContext ctx;
  QueryResult result;
  ASSERT_TRUE(ExecuteQuery(index.get(), RangeQuery{10, 20, QueryType::kCount},
                           &ctx, &result)
                  .ok());
  EXPECT_EQ(result.count, 10u);
  ASSERT_TRUE(ExecuteQuery(index.get(), RangeQuery{10, 20, QueryType::kSum},
                           &ctx, &result)
                  .ok());
  EXPECT_EQ(result.sum, 145);
  ASSERT_TRUE(ExecuteQuery(index.get(), RangeQuery{10, 20, QueryType::kMinMax},
                           &ctx, &result)
                  .ok());
  EXPECT_TRUE(result.has_minmax);
  EXPECT_EQ(result.min_value, 10);
  EXPECT_EQ(result.max_value, 19);
}

TEST(OperatorsTest, MinMaxAcrossAllMethods) {
  // kMinMax is answered by every access method through the unified Execute
  // path; each must agree with the oracle, including on empty ranges.
  Column col = Column::UniqueRandom("A", 4000, 77);
  const IndexMethod methods[] = {
      IndexMethod::kScan,   IndexMethod::kSort,
      IndexMethod::kCrack,  IndexMethod::kAdaptiveMerge,
      IndexMethod::kHybrid, IndexMethod::kBTreeMerge,
  };
  for (IndexMethod m : methods) {
    IndexConfig config;
    config.method = m;
    config.merge.run_size = 1u << 9;
    config.btree.run_size = 1u << 9;
    auto index = MakeIndex(&col, config);
    QueryContext ctx;
    QueryResult result;
    const Query q = Query::MinMax("", "", 500, 1500);
    ASSERT_TRUE(index->Execute(q, &ctx, &result).ok()) << ToString(m);
    const QueryResult want = OracleExecute(col, q);
    ASSERT_TRUE(result.has_minmax) << ToString(m);
    EXPECT_EQ(result.min_value, want.min_value) << ToString(m);
    EXPECT_EQ(result.max_value, want.max_value) << ToString(m);
    // Non-empty range matching no rows (domain is [0, 4000)).
    QueryResult empty;
    ASSERT_TRUE(
        index->Execute(Query::MinMax("", "", 5000, 6000), &ctx, &empty).ok())
        << ToString(m);
    EXPECT_FALSE(empty.has_minmax) << ToString(m);
  }
}

TEST(OperatorsTest, QueryResultMergeCombinesPartials) {
  QueryResult a;
  a.Reset(QueryKind::kMinMax);
  a.count = 3;
  a.sum = 10;
  a.row_ids = {1, 2};
  a.min_value = 5;
  a.max_value = 9;
  a.has_minmax = true;
  QueryResult b;
  b.Reset(QueryKind::kMinMax);
  b.count = 2;
  b.sum = 7;
  b.row_ids = {7};
  b.min_value = 2;
  b.max_value = 6;
  b.has_minmax = true;
  a.Merge(b);
  EXPECT_EQ(a.count, 5u);
  EXPECT_EQ(a.sum, 17);
  EXPECT_EQ(a.row_ids, (std::vector<RowId>{1, 2, 7}));
  EXPECT_EQ(a.min_value, 2);
  EXPECT_EQ(a.max_value, 9);
  // Merging an empty partial changes nothing.
  QueryResult none;
  none.Reset(QueryKind::kMinMax);
  a.Merge(none);
  EXPECT_EQ(a.min_value, 2);
  EXPECT_EQ(a.max_value, 9);
  EXPECT_TRUE(a.has_minmax);
  // An empty result adopts the first non-empty partial's extremes.
  QueryResult fresh;
  fresh.Reset(QueryKind::kMinMax);
  fresh.Merge(b);
  EXPECT_TRUE(fresh.has_minmax);
  EXPECT_EQ(fresh.min_value, 2);
  EXPECT_EQ(fresh.max_value, 6);
}

TEST(OperatorsTest, OracleExecuteMatchesByHand) {
  Column col("A", {5, 1, 9, 3});
  auto r = OracleExecute(col, RangeQuery{2, 6, QueryType::kCount});
  EXPECT_EQ(r.count, 2u);  // 5, 3
  r = OracleExecute(col, RangeQuery{2, 6, QueryType::kSum});
  EXPECT_EQ(r.sum, 8);
}

TEST(OperatorsTest, FetchSumTwoColumnPlan) {
  // Figure 6: select sum(B) from R where lo <= A < hi.
  Column a = Column::UniqueRandom("A", 1000, 60);
  Column b("B", {});
  for (size_t i = 0; i < 1000; ++i) b.Append(static_cast<Value>(i * 2));
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  auto index = MakeIndex(&a, config);
  QueryContext ctx;
  int64_t sum = 0;
  RangeQuery q{100, 300, QueryType::kSum};
  ASSERT_TRUE(FetchSum(index.get(), b, q, &ctx, &sum).ok());
  EXPECT_EQ(sum, OracleFetchSum(a, b, q));
}

// --------------------------------------------------------------- Driver

TEST(DriverTest, SingleClientRunsAllQueries) {
  Column col = Column::UniqueRandom("A", 5000, 61);
  IndexConfig config;
  auto index = MakeIndex(&col, config);
  WorkloadGenerator gen(0, 5000);
  WorkloadOptions wopts;
  wopts.num_queries = 64;
  auto queries = gen.Generate(wopts);
  DriverOptions dopts;
  dopts.num_clients = 1;
  RunResult result = Driver::Run(index.get(), queries, dopts);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.num_queries, 64u);
  EXPECT_EQ(result.records.size(), 64u);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.throughput_qps, 0.0);
}

TEST(DriverTest, QueriesSplitAcrossClients) {
  Column col = Column::UniqueRandom("A", 5000, 62);
  IndexConfig config;
  auto index = MakeIndex(&col, config);
  WorkloadGenerator gen(0, 5000);
  WorkloadOptions wopts;
  wopts.num_queries = 100;
  auto queries = gen.Generate(wopts);
  DriverOptions dopts;
  dopts.num_clients = 3;  // 34 + 33 + 33
  RunResult result = Driver::Run(index.get(), queries, dopts);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.records.size(), 100u);
  std::vector<size_t> per_client(3, 0);
  for (const auto& rec : result.records) {
    ASSERT_LT(rec.client_id, 3u);
    ++per_client[rec.client_id];
  }
  EXPECT_EQ(per_client[0], 34u);
  EXPECT_EQ(per_client[1], 33u);
  EXPECT_EQ(per_client[2], 33u);
}

TEST(DriverTest, MoreClientsThanQueriesClamped) {
  Column col = Column::UniqueRandom("A", 100, 63);
  IndexConfig config;
  auto index = MakeIndex(&col, config);
  std::vector<RangeQuery> queries = {RangeQuery{1, 5, QueryType::kCount},
                                     RangeQuery{2, 6, QueryType::kCount}};
  DriverOptions dopts;
  dopts.num_clients = 8;
  RunResult result = Driver::Run(index.get(), queries, dopts);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.num_clients, 2u);
  EXPECT_EQ(result.records.size(), 2u);
}

TEST(DriverTest, EmptyWorkload) {
  Column col = Column::UniqueRandom("A", 100, 64);
  IndexConfig config;
  auto index = MakeIndex(&col, config);
  RunResult result = Driver::Run(index.get(), {}, DriverOptions{});
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.num_queries, 0u);
}

TEST(DriverTest, RecordsSortedByCompletionTime) {
  Column col = Column::UniqueRandom("A", 2000, 65);
  IndexConfig config;
  auto index = MakeIndex(&col, config);
  WorkloadGenerator gen(0, 2000);
  WorkloadOptions wopts;
  wopts.num_queries = 64;
  auto queries = gen.Generate(wopts);
  DriverOptions dopts;
  dopts.num_clients = 4;
  RunResult result = Driver::Run(index.get(), queries, dopts);
  ASSERT_TRUE(result.status.ok());
  for (size_t i = 1; i < result.records.size(); ++i) {
    EXPECT_LE(result.records[i - 1].stats.finish_ns,
              result.records[i].stats.finish_ns);
  }
}

TEST(DriverTest, ReadTimeAggregatedIntoTotals) {
  Column col = Column::UniqueRandom("A", 20000, 68);
  IndexConfig config;
  config.method = IndexMethod::kSort;  // sort's read path records read_ns
  auto index = MakeIndex(&col, config);
  WorkloadGenerator gen(0, 20000);
  WorkloadOptions wopts;
  wopts.num_queries = 32;
  wopts.selectivity = 0.2;
  DriverOptions dopts;
  dopts.num_clients = 2;
  RunResult result = Driver::Run(index.get(), gen.Generate(wopts), dopts);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.total_read_ns, 0);
  // The run totals are exactly the shared accumulation over all records.
  const StatTotals totals = SumStats(result.records, 0, result.records.size());
  EXPECT_EQ(result.total_read_ns, totals.read_ns);
  EXPECT_EQ(result.total_wait_ns, totals.wait_ns);
  EXPECT_EQ(result.total_conflicts, totals.conflicts);
}

TEST(DriverTest, BatchSizeOneMatchesSequentialSemantics) {
  Column col = Column::UniqueRandom("A", 5000, 69);
  IndexConfig config;
  auto index = MakeIndex(&col, config);
  WorkloadGenerator gen(0, 5000);
  WorkloadOptions wopts;
  wopts.num_queries = 48;
  DriverOptions dopts;
  dopts.num_clients = 4;
  dopts.batch_size = 1;  // strictly sequential per-client streams
  RunResult result = Driver::Run(index.get(), gen.Generate(wopts), dopts);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.records.size(), 48u);
}

TEST(WorkloadTest, SplitStreamsPartitionsContiguously) {
  auto slices = SplitStreams(100, 3);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0], (std::pair<size_t, size_t>{0, 34}));
  EXPECT_EQ(slices[1], (std::pair<size_t, size_t>{34, 67}));
  EXPECT_EQ(slices[2], (std::pair<size_t, size_t>{67, 100}));
  // More clients than queries: clamped.
  EXPECT_EQ(SplitStreams(2, 8).size(), 2u);
  EXPECT_EQ(SplitStreams(0, 4).size(), 1u);
}

TEST(DriverTest, RecordingCanBeDisabled) {
  Column col = Column::UniqueRandom("A", 500, 66);
  IndexConfig config;
  auto index = MakeIndex(&col, config);
  WorkloadGenerator gen(0, 500);
  WorkloadOptions wopts;
  wopts.num_queries = 16;
  DriverOptions dopts;
  dopts.record_per_query = false;
  RunResult result = Driver::Run(index.get(), gen.Generate(wopts), dopts);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.response_hist.count(), 16u);
}

// --------------------------------------------------------- IndexFactory

TEST(IndexFactoryTest, AllMethodsConstructible) {
  Column col = Column::UniqueRandom("A", 200, 67);
  for (IndexMethod m :
       {IndexMethod::kScan, IndexMethod::kSort, IndexMethod::kCrack,
        IndexMethod::kAdaptiveMerge, IndexMethod::kHybrid,
        IndexMethod::kBTreeMerge}) {
    IndexConfig config;
    config.method = m;
    auto index = MakeIndex(&col, config);
    ASSERT_NE(index, nullptr) << ToString(m);
    QueryContext ctx;
    uint64_t count = 0;
    ASSERT_TRUE(index->RangeCount(ValueRange{50, 150}, &ctx, &count).ok())
        << ToString(m);
    EXPECT_EQ(count, 100u) << ToString(m);
  }
}

TEST(IndexFactoryTest, MethodNames) {
  EXPECT_EQ(ToString(IndexMethod::kScan), "scan");
  EXPECT_EQ(ToString(IndexMethod::kSort), "sort");
  EXPECT_EQ(ToString(IndexMethod::kCrack), "crack");
  EXPECT_EQ(ToString(IndexMethod::kAdaptiveMerge), "merge");
  EXPECT_EQ(ToString(IndexMethod::kHybrid), "hybrid");
  EXPECT_EQ(ToString(IndexMethod::kBTreeMerge), "btree-merge");
}

// ------------------------------------------------------------- Database
//
// All statements flow through sessions; a fresh single-query session per
// statement reproduces the old one-shot behavior where tests relied on it.

namespace {

std::unique_ptr<Session> OneShot(Database* db, const IndexConfig& config) {
  SessionOptions sopts;
  sopts.config = config;
  return db->OpenSession(std::move(sopts));
}

}  // namespace

TEST(DatabaseTest, CreateTableAndQuery) {
  Database db;
  std::vector<Column> cols;
  cols.push_back(Column::UniqueRandom("A", 1000, 70));
  ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());
  IndexConfig config;
  uint64_t count = 0;
  ASSERT_TRUE(OneShot(&db, config)->Count("R", "A", 100, 300, &count).ok());
  EXPECT_EQ(count, 200u);
  int64_t sum = 0;
  ASSERT_TRUE(OneShot(&db, config)->Sum("R", "A", 100, 300, &sum).ok());
  EXPECT_EQ(sum, (100 + 299) * 200 / 2);
}

TEST(DatabaseTest, MissingTableOrColumn) {
  Database db;
  IndexConfig config;
  uint64_t count;
  EXPECT_TRUE(
      OneShot(&db, config)->Count("nope", "A", 0, 1, &count).IsNotFound());
  std::vector<Column> cols;
  cols.push_back(Column("A", {1, 2, 3}));
  ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());
  EXPECT_TRUE(
      OneShot(&db, config)->Count("R", "B", 0, 1, &count).IsNotFound());
}

TEST(DatabaseTest, IndexSharedAcrossQueries) {
  Database db;
  std::vector<Column> cols;
  cols.push_back(Column::UniqueRandom("A", 1000, 71));
  ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());
  IndexConfig config;
  uint64_t count;
  QueryStats s1;
  QueryStats s2;
  ASSERT_TRUE(
      OneShot(&db, config)->Count("R", "A", 100, 200, &count, &s1).ok());
  ASSERT_TRUE(
      OneShot(&db, config)->Count("R", "A", 100, 200, &count, &s2).ok());
  EXPECT_GT(s1.init_ns, 0);
  EXPECT_EQ(s2.init_ns, 0);  // same index reused
  EXPECT_EQ(db.catalog()->num_indexes(), 1u);
}

TEST(DatabaseTest, MethodsCoexistOnSameColumn) {
  Database db;
  std::vector<Column> cols;
  cols.push_back(Column::UniqueRandom("A", 500, 72));
  ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());
  IndexConfig crack;
  crack.method = IndexMethod::kCrack;
  IndexConfig sort;
  sort.method = IndexMethod::kSort;
  uint64_t c1;
  uint64_t c2;
  ASSERT_TRUE(OneShot(&db, crack)->Count("R", "A", 50, 150, &c1).ok());
  ASSERT_TRUE(OneShot(&db, sort)->Count("R", "A", 50, 150, &c2).ok());
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(db.catalog()->num_indexes(), 2u);
}

TEST(DatabaseTest, DropIndex) {
  Database db;
  std::vector<Column> cols;
  cols.push_back(Column::UniqueRandom("A", 100, 73));
  ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());
  IndexConfig config;
  uint64_t count;
  ASSERT_TRUE(OneShot(&db, config)->Count("R", "A", 0, 50, &count).ok());
  EXPECT_TRUE(db.DropIndex("R", "A", config));
  EXPECT_FALSE(db.DropIndex("R", "A", config));
  // Next query transparently rebuilds.
  ASSERT_TRUE(OneShot(&db, config)->Count("R", "A", 0, 50, &count).ok());
  EXPECT_EQ(count, 50u);
}

TEST(DatabaseTest, SumOtherTwoColumnPlan) {
  Database db;
  std::vector<Column> cols;
  Column a = Column::UniqueRandom("A", 800, 74);
  Column b("B", {});
  for (size_t i = 0; i < 800; ++i) b.Append(static_cast<Value>(i % 7));
  const Column a_copy = a;
  const Column b_copy = b;
  cols.push_back(std::move(a));
  cols.push_back(std::move(b));
  ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());
  IndexConfig config;
  int64_t sum = 0;
  ASSERT_TRUE(
      OneShot(&db, config)->SumOther("R", "A", "B", 100, 500, &sum).ok());
  EXPECT_EQ(sum, OracleFetchSum(a_copy, b_copy,
                                RangeQuery{100, 500, QueryType::kSum}));
}

TEST(DatabaseTest, ConfigsDifferingOnlyInOptionsGetDistinctEntries) {
  // Regression: the catalog key once hashed only table/column/method, so two
  // configs differing in any option block silently aliased one index.
  Database db;
  std::vector<Column> cols;
  cols.push_back(Column::UniqueRandom("A", 500, 76));
  ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());

  IndexConfig piece;
  piece.method = IndexMethod::kCrack;
  piece.cracking.mode = ConcurrencyMode::kPieceLatch;
  IndexConfig column_latch = piece;
  column_latch.cracking.mode = ConcurrencyMode::kColumnLatch;

  auto a = db.GetOrCreateIndex("R", "A", piece);
  auto b = db.GetOrCreateIndex("R", "A", column_latch);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(db.catalog()->num_indexes(), 2u);

  // Display-only fields do not distinguish entries.
  IndexConfig renamed = piece;
  renamed.cracking.name = "crack-renamed";
  EXPECT_EQ(db.GetOrCreateIndex("R", "A", renamed).get(), a.get());
  EXPECT_EQ(db.catalog()->num_indexes(), 2u);

  // Dropping one entry leaves its sibling alone.
  EXPECT_TRUE(db.DropIndex("R", "A", column_latch));
  EXPECT_EQ(db.catalog()->num_indexes(), 1u);
  EXPECT_EQ(db.GetOrCreateIndex("R", "A", piece).get(), a.get());

  // Partitioning is physical-structure identity: a partitioned and an
  // unpartitioned config on the same column are distinct entries, and so
  // are different partition counts.
  IndexConfig partitioned = piece;
  partitioned.partitions = 4;
  auto part_idx = db.GetOrCreateIndex("R", "A", partitioned);
  ASSERT_NE(part_idx, nullptr);
  EXPECT_NE(part_idx.get(), a.get());
  EXPECT_NE(IndexConfigKey(piece), IndexConfigKey(partitioned));
  IndexConfig partitioned8 = partitioned;
  partitioned8.partitions = 8;
  EXPECT_NE(IndexConfigKey(partitioned), IndexConfigKey(partitioned8));
  // The fan-out pool is an execution resource, not index identity.
  IndexConfig pooled = partitioned;
  pooled.pool = db.pool();
  EXPECT_EQ(IndexConfigKey(partitioned), IndexConfigKey(pooled));
  EXPECT_TRUE(db.DropIndex("R", "A", partitioned));

  // Other option blocks distinguish their methods too.
  IndexConfig merge_a;
  merge_a.method = IndexMethod::kAdaptiveMerge;
  IndexConfig merge_b = merge_a;
  merge_b.merge.mvcc_commit = true;
  EXPECT_NE(IndexConfigKey(merge_a), IndexConfigKey(merge_b));
  // ...but options of an unconsulted block do not.
  IndexConfig scan_a;
  scan_a.method = IndexMethod::kScan;
  IndexConfig scan_b = scan_a;
  scan_b.cracking.group_crack = true;
  EXPECT_EQ(IndexConfigKey(scan_a), IndexConfigKey(scan_b));
}

TEST(DatabaseTest, LockManagerIntegration) {
  Database db;
  std::vector<Column> cols;
  cols.push_back(Column::UniqueRandom("A", 1000, 75));
  ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());
  IndexConfig config;
  config.cracking.lock_manager = db.lock_manager();
  config.cracking.lock_resource = "R/A";
  // A user transaction locks the column; adaptive refinement is skipped.
  ASSERT_TRUE(db.lock_manager()->Acquire(5, "R/A", LockMode::kS).ok());
  uint64_t count;
  QueryStats stats;
  ASSERT_TRUE(
      OneShot(&db, config)->Count("R", "A", 200, 400, &count, &stats).ok());
  EXPECT_EQ(count, 200u);
  EXPECT_TRUE(stats.refinement_skipped);
  db.lock_manager()->ReleaseAll(5);
}

}  // namespace
}  // namespace adaptidx
