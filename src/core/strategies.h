#ifndef ADAPTIDX_CORE_STRATEGIES_H_
#define ADAPTIDX_CORE_STRATEGIES_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace adaptidx {

/// \brief Refinement strategies from Section 7 ("Future Work"), implemented
/// here as configurable policies of the cracking index.
enum class RefinementStrategy {
  /// Standard cracking: every query cracks, blocking on write latches.
  kStandard,
  /// "Lazy": queries refrain from side effects under contention — refinement
  /// uses try-latches only and is skipped whenever the latch is busy,
  /// reducing write contention at the cost of slower refinement.
  kLazy,
  /// "Active": aggressively refine — pieces at or below a threshold are
  /// fully sorted instead of cracked, reaching the optimal state sooner and
  /// thereby removing future conflict opportunities.
  kActive,
  /// "Dynamic": switch between lazy and active based on the observed
  /// conflict rate — high contention behaves lazily, low contention behaves
  /// actively.
  kDynamic,
};

std::string ToString(RefinementStrategy s);

/// \brief Per-crack directive produced by the policy.
struct RefinementDirective {
  bool try_only = false;    ///< use TryWriteLock; skip refinement when busy
  bool sort_piece = false;  ///< sort the piece instead of cracking it
};

/// \brief Runtime policy object consulted before each refinement action.
///
/// For kDynamic it keeps an exponentially decayed conflict score fed by
/// `OnConflict`/`OnSuccess`: above `kHighContention` the policy behaves like
/// kLazy; below `kLowContention` like kActive; in between like kStandard.
class RefinementPolicy {
 public:
  RefinementPolicy(RefinementStrategy strategy, size_t sort_piece_threshold);

  /// \brief Decides how to refine a piece of `piece_size` elements.
  RefinementDirective OnCrack(size_t piece_size) const;

  /// \brief Feeds a blocked/failed latch acquisition into the contention
  /// estimate (dynamic strategy).
  void OnConflict();

  /// \brief Feeds an uncontended acquisition into the contention estimate.
  void OnSuccess();

  RefinementStrategy strategy() const { return strategy_; }
  size_t sort_piece_threshold() const { return sort_piece_threshold_; }

  /// \brief Current contention score in [0, 1]; ~fraction of recent
  /// refinements that hit contention.
  double ContentionScore() const;

 private:
  static constexpr double kHighContention = 0.25;
  static constexpr double kLowContention = 0.05;
  /// Decay denominator: each observation moves the score by 1/kWindow of
  /// the distance to the observed outcome.
  static constexpr double kWindow = 64.0;

  const RefinementStrategy strategy_;
  const size_t sort_piece_threshold_;
  /// Fixed-point (x 1e6) decayed conflict score, updated with CAS.
  mutable std::atomic<int64_t> score_micros_{0};
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_STRATEGIES_H_
