#include "core/scan_index.h"

#include <algorithm>

#include "cracking/span_kernels.h"
#include "util/stopwatch.h"

namespace adaptidx {

Status ScanIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                              QueryResult* result) {
  const ValueRange& range = query.range;
  ScopedTimer read_timer(&ctx->stats.read_ns);
  const Value* data = column_->data();
  const size_t n = column_->size();
  switch (query.kind) {
    case QueryKind::kCount:
      result->count =
          ScanCountSpan(data, 0, n, range.lo, range.hi, KernelTier::kAuto);
      return Status::OK();
    case QueryKind::kSum:
      result->sum =
          ScanSumSpan(data, 0, n, range.lo, range.hi, KernelTier::kAuto);
      return Status::OK();
    case QueryKind::kRowIds: {
      if (range.Empty()) return Status::OK();  // width below would wrap
      const uint64_t width =
          static_cast<uint64_t>(range.hi) - static_cast<uint64_t>(range.lo);
      for (size_t i = 0; i < n; ++i) {
        if ((static_cast<uint64_t>(data[i]) -
             static_cast<uint64_t>(range.lo)) < width) {
          result->row_ids.push_back(static_cast<RowId>(i));
        }
      }
      return Status::OK();
    }
    case QueryKind::kMinMax: {
      MinMaxAccumulator acc;
      for (size_t i = 0; i < n; ++i) {
        if (range.Contains(data[i])) acc.Feed(data[i]);
      }
      acc.Store(result);
      return Status::OK();
    }
    case QueryKind::kSumOther:
      return Status::NotSupported("scan holds no second column");
  }
  return Status::InvalidArgument("unknown query kind");
}

}  // namespace adaptidx
