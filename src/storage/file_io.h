#ifndef ADAPTIDX_STORAGE_FILE_IO_H_
#define ADAPTIDX_STORAGE_FILE_IO_H_

#include <memory>
#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace adaptidx {

/// \file
/// Binary persistence for columns and tables. Section 5.1: "data is stored
/// one column at a time ... This representation is the same both in memory
/// and on disk" — a column file is a small header followed by the raw dense
/// value array, so loading is a single sequential read into the in-memory
/// representation.
///
/// Column file format (little-endian):
///   bytes 0-7   magic "ADIXCOL1"
///   bytes 8-15  uint64 value count
///   bytes 16-   count * int64 values
///
/// A table is a directory with one `<column>.col` file per column and a
/// `manifest.txt` listing column names in positional order. Adaptive index
/// state is deliberately *not* persisted: indexes are optional side-effect
/// structures that queries re-create on demand (Section 4.2: such an index
/// "can be dropped at any time").

/// \brief Writes one column; overwrites an existing file.
Status WriteColumn(const Column& column, const std::string& path);

/// \brief Reads a column file written by WriteColumn; `name` becomes the
/// in-memory column name.
Status ReadColumn(const std::string& path, const std::string& name,
                  Column* out);

/// \brief Writes all columns of `table` into directory `dir` (created if
/// missing) plus a manifest.
Status WriteTable(const Table& table, const std::string& dir);

/// \brief Loads a table written by WriteTable.
Status ReadTable(const std::string& dir, const std::string& table_name,
                 std::unique_ptr<Table>* out);

// ---------------------------------------------------------- durability ops
//
// The crash-consistency primitives the durability subsystem builds on.
// None of the Write*/Read* helpers above make any durability promise: they
// hand bytes to the page cache. The three calls below are what turns a
// write into a commitment — fdatasync for log batches, fsync-of-directory
// for created/renamed names, and write-temp-then-rename so a torn
// checkpoint image can never appear under the published name.

/// \brief Flushes a file descriptor's data to stable storage (fdatasync,
/// EINTR-retried). The group-commit hot path: data blocks reach the disk,
/// file metadata (mtime) may not — enough for a log whose record CRCs, not
/// its length field, define validity.
Status SyncFd(int fd);

/// \brief fsync on a path (file or directory). Syncing a directory makes
/// entries created/renamed in it durable — a freshly created file whose
/// directory was never synced can vanish on power loss.
Status SyncPath(const std::string& path);

/// \brief Atomically publishes `size` bytes from `data` under `path`:
/// writes `path`.tmp.<pid>, fsyncs it, renames over `path`, and fsyncs the
/// parent directory. After a crash at ANY point, `path` holds either the
/// complete old content or the complete new content, never a prefix — the
/// installation step of checkpoint images.
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size);

}  // namespace adaptidx

#endif  // ADAPTIDX_STORAGE_FILE_IO_H_
