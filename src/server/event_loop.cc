#include "server/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <utility>

namespace adaptidx {
namespace server {

EventLoop::~EventLoop() {
  for (int fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Status EventLoop::Init() {
  if (::pipe(wake_fds_) != 0) {
    return Status::Corruption("event loop: pipe() failed");
  }
  for (int fd : wake_fds_) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  return Status::OK();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  // Self-pipe wake-up so a loop parked in poll() notices immediately.
  const char byte = 0;
  if (wake_fds_[1] >= 0) {
    ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
    (void)ignored;
  }
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(post_mu_);
    posted_.push_back(std::move(fn));
  }
  const char byte = 0;
  if (wake_fds_[1] >= 0) {
    ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
    (void)ignored;
  }
}

void EventLoop::Register(int fd, IoCallback cb) {
  fds_[fd] = FdEntry{std::move(cb), false};
}

void EventLoop::EnableWrite(int fd, bool enable) {
  auto it = fds_.find(fd);
  if (it != fds_.end()) it->second.want_write = enable;
}

void EventLoop::Unregister(int fd) { fds_.erase(fd); }

void EventLoop::DrainWakePipe() {
  char buf[256];
  while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lk(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::Run() {
  loop_tid_.store(std::this_thread::get_id());
  std::vector<struct pollfd> pfds;
  // (fd, readable, writable) snapshot: callbacks may mutate fds_ (close
  // peers, register accepted connections), so readiness is dispatched off
  // a copy with a liveness re-check per fd.
  std::vector<std::pair<int, std::pair<bool, bool>>> ready;
  while (!stop_.load(std::memory_order_acquire)) {
    RunPosted();
    if (stop_.load(std::memory_order_acquire)) break;

    pfds.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    for (const auto& [fd, entry] : fds_) {
      short events = POLLIN;
      if (entry.want_write) events |= POLLOUT;
      pfds.push_back({fd, events, 0});
    }

    const int n = ::poll(pfds.data(), pfds.size(), /*timeout ms=*/1000);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: exit rather than spin
    }
    if (pfds[0].revents != 0) DrainWakePipe();

    ready.clear();
    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      // Fold HUP/ERR into readability: the handler's read() observes EOF
      // or the error and tears the connection down on its normal path.
      const bool readable =
          (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      const bool writable = (pfds[i].revents & POLLOUT) != 0;
      ready.emplace_back(pfds[i].fd, std::make_pair(readable, writable));
    }
    for (const auto& [fd, rw] : ready) {
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;  // closed by an earlier callback
      // Copy the callback: the entry may be unregistered mid-call.
      IoCallback cb = it->second.cb;
      cb(rw.first, rw.second);
    }
  }
  RunPosted();  // closures posted alongside Stop still run once
  loop_tid_.store(std::thread::id());
}

}  // namespace server
}  // namespace adaptidx
