#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cracking_index.h"
#include "core/index_factory.h"
#include "core/updatable_index.h"
#include "engine/database.h"
#include "engine/plan.h"
#include "engine/query.h"
#include "engine/session.h"
#include "test_util.h"
#include "util/thread_pool.h"
#include "workload/workload.h"

namespace adaptidx {
namespace {

void FillDb(Database* db, size_t rows, uint64_t seed) {
  std::vector<Column> cols;
  cols.push_back(Column::UniqueRandom("A", rows, seed));
  ASSERT_TRUE(db->CreateTable("R", std::move(cols)).ok());
}

// ------------------------------------------------------------ descriptors

TEST(QueryDescriptorTest, BuildersFillFields) {
  Query q = Query::SumOther("R", "A", "B", 10, 20);
  EXPECT_EQ(q.kind, QueryKind::kSumOther);
  EXPECT_EQ(q.table, "R");
  EXPECT_EQ(q.column, "A");
  EXPECT_EQ(q.agg_column, "B");
  EXPECT_EQ(q.range.lo, 10);
  EXPECT_EQ(q.range.hi, 20);
  EXPECT_EQ(ToString(QueryKind::kSumOther), "sum-other");
}

TEST(QueryDescriptorTest, ToQueriesLiftsWorkload) {
  WorkloadGenerator gen(0, 1000);
  WorkloadOptions wopts;
  wopts.num_queries = 16;
  wopts.type = QueryType::kSum;
  const auto ranges = gen.Generate(wopts);
  const auto queries = ToQueries("R", "A", ranges);
  ASSERT_EQ(queries.size(), ranges.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].kind, QueryKind::kSum);
    EXPECT_EQ(queries[i].table, "R");
    EXPECT_EQ(queries[i].range.lo, ranges[i].lo);
    EXPECT_EQ(queries[i].range.hi, ranges[i].hi);
  }
}

// --------------------------------------------------------------- sessions

TEST(SessionTest, SyncWrappersMatchOracle) {
  Database db;
  Column a = Column::UniqueRandom("A", 5000, 41);
  RangeOracle oracle(a);
  {
    std::vector<Column> cols;
    cols.push_back(a);
    Column b("B", {});
    for (size_t i = 0; i < 5000; ++i) b.Append(static_cast<Value>(i % 13));
    cols.push_back(std::move(b));
    ASSERT_TRUE(db.CreateTable("R", std::move(cols)).ok());
  }
  auto session = db.OpenSession();

  uint64_t count = 0;
  ASSERT_TRUE(session->Count("R", "A", 100, 900, &count).ok());
  EXPECT_EQ(count, oracle.Count(100, 900));

  int64_t sum = 0;
  QueryStats stats;
  ASSERT_TRUE(session->Sum("R", "A", 100, 900, &sum, &stats).ok());
  EXPECT_EQ(sum, oracle.Sum(100, 900));
  EXPECT_GT(stats.response_ns, 0);

  std::vector<RowId> ids;
  ASSERT_TRUE(session->RowIds("R", "A", 100, 900, &ids).ok());
  EXPECT_EQ(ids.size(), oracle.Count(100, 900));

  // kMinMax: unique values 0..4999, so the extremes of [100, 900) are the
  // bounds themselves.
  Value mn = 0;
  Value mx = 0;
  bool found = false;
  ASSERT_TRUE(session->MinMax("R", "A", 100, 900, &mn, &mx, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(mn, 100);
  EXPECT_EQ(mx, 899);
  ASSERT_TRUE(session->MinMax("R", "A", 700, 700, &mn, &mx, &found).ok());
  EXPECT_FALSE(found);

  // A mistyped SumOther fails before any index is registered.
  int64_t sum_b = 0;
  const size_t indexes_before = db.catalog()->num_indexes();
  EXPECT_TRUE(
      session->SumOther("R", "A", "typo", 100, 900, &sum_b).IsNotFound());
  EXPECT_EQ(db.catalog()->num_indexes(), indexes_before);

  ASSERT_TRUE(session->SumOther("R", "A", "B", 100, 900, &sum_b).ok());
  const Table* t = db.GetTable("R");
  int64_t expect_b = 0;
  for (size_t i = 0; i < 5000; ++i) {
    const Value v = (*t->GetColumn("A"))[i];
    if (v >= 100 && v < 900) expect_b += (*t->GetColumn("B"))[i];
  }
  EXPECT_EQ(sum_b, expect_b);
}

TEST(SessionTest, ErrorsSurfaceOnTickets) {
  Database db;
  FillDb(&db, 100, 42);
  auto session = db.OpenSession();
  QueryTicket bad = session->Submit(Query::Count("nope", "A", 0, 10));
  EXPECT_TRUE(bad.status().IsNotFound());
  QueryTicket good = session->Submit(Query::Count("R", "A", 0, 10));
  EXPECT_TRUE(good.status().ok());
  EXPECT_EQ(good.result().count, 10u);
  EXPECT_TRUE(good.valid());
  // Never-submitted tickets are terminally failed, not UB.
  QueryTicket invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(invalid.done());
  EXPECT_TRUE(invalid.status().IsInvalidArgument());
  EXPECT_EQ(invalid.result().count, 0u);
}

TEST(SessionTest, IdentityAssignedAndPinned) {
  Database db;
  FillDb(&db, 100, 43);
  auto s1 = db.OpenSession();
  auto s2 = db.OpenSession();
  EXPECT_NE(s1->session_id(), s2->session_id());
  EXPECT_NE(s1->txn_id(), s2->txn_id());
  EXPECT_NE(s1->txn_id(), 0u);
  // Default client identity is the session id; explicit ids are honored.
  EXPECT_EQ(s1->client_id(), s1->session_id());
  SessionOptions sopts;
  sopts.client_id = 77;
  sopts.txn_id = 1234;
  auto s3 = db.OpenSession(std::move(sopts));
  EXPECT_EQ(s3->client_id(), 77u);
  EXPECT_EQ(s3->txn_id(), 1234u);
  QueryContext ctx = s3->MakeContext();
  EXPECT_EQ(ctx.client_id, 77u);
  EXPECT_EQ(ctx.txn_id, 1234u);
  EXPECT_EQ(ctx.session_id, s3->session_id());
}

TEST(SessionTest, TicketsOutliveSession) {
  Database db;
  FillDb(&db, 20000, 44);
  RangeOracle oracle(*db.GetTable("R")->GetColumn("A"));
  std::vector<QueryTicket> tickets;
  {
    auto session = db.OpenSession();
    std::vector<Query> batch;
    for (Value lo = 0; lo < 18000; lo += 1000) {
      batch.push_back(Query::Count("R", "A", lo, lo + 500));
    }
    tickets = session->SubmitBatch(std::move(batch));
    // Session closes here: close drains in-flight work, so every surviving
    // ticket is complete and readable afterwards.
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(tickets[i].done());
    ASSERT_TRUE(tickets[i].status().ok());
    const Value lo = static_cast<Value>(i * 1000);
    EXPECT_EQ(tickets[i].result().count, oracle.Count(lo, lo + 500));
  }
}

TEST(SessionTest, QueriesSubmittedCountsBothPaths) {
  Database db;
  FillDb(&db, 500, 45);
  auto session = db.OpenSession();
  uint64_t count = 0;
  ASSERT_TRUE(session->Count("R", "A", 0, 100, &count).ok());
  session->Submit(Query::Count("R", "A", 0, 100)).Wait();
  EXPECT_EQ(session->queries_submitted(), 2u);
}

// ------------------------------------------------- batch differential

/// Acceptance: SubmitBatch with group_crack=true produces identical results
/// to serial execution over a fresh index.
TEST(SessionBatchTest, GroupCrackBatchMatchesSerial) {
  const size_t kRows = 100000;
  Column column = Column::UniqueRandom("A", kRows, 46);
  RangeOracle oracle(column);

  WorkloadGenerator gen(0, static_cast<Value>(kRows));
  WorkloadOptions wopts;
  wopts.num_queries = 256;
  wopts.selectivity = 0.01;
  wopts.type = QueryType::kSum;
  wopts.seed = 21;
  auto ranges = gen.Generate(wopts);
  wopts.type = QueryType::kCount;
  wopts.seed = 22;
  for (const auto& q : gen.Generate(wopts)) ranges.push_back(q);

  // Serial reference: the same sequence, one at a time on a fresh index.
  CrackingOptions copts;
  copts.group_crack = true;
  std::vector<QueryResult> serial;
  {
    CrackingIndex reference(&column, copts);
    for (const auto& q : ranges) {
      QueryContext ctx;
      QueryResult r;
      ASSERT_TRUE(ExecuteQuery(&reference, q, &ctx, &r).ok());
      serial.push_back(r);
    }
  }

  CrackingIndex index(&column, copts);
  ThreadPool pool(8);
  auto session = Session::OnIndex(&index, &pool);
  auto tickets = session->SubmitBatch(ToQueries("", "", ranges));
  ASSERT_EQ(tickets.size(), ranges.size());
  for (size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].status().ok()) << i;
    EXPECT_TRUE(tickets[i].result() == serial[i]) << i;
    if (ranges[i].type == QueryType::kCount) {
      EXPECT_EQ(tickets[i].result().count,
                oracle.Count(ranges[i].lo, ranges[i].hi))
          << i;
    } else {
      EXPECT_EQ(tickets[i].result().sum, oracle.Sum(ranges[i].lo, ranges[i].hi))
          << i;
    }
  }
  session.reset();
  EXPECT_TRUE(index.ValidateStructure());
  EXPECT_GT(index.NumCracks(), 0u);
}

/// Satellite: SubmitBatch vs serial Submit equivalence under 4+ concurrent
/// sessions sharing one catalog index.
TEST(SessionBatchTest, ConcurrentSessionsMatchSerialResults) {
  const size_t kRows = 50000;
  const size_t kSessions = 5;
  Database db;
  FillDb(&db, kRows, 47);
  RangeOracle oracle(*db.GetTable("R")->GetColumn("A"));

  WorkloadGenerator gen(0, static_cast<Value>(kRows));
  std::vector<std::vector<RangeQuery>> streams;
  std::vector<std::vector<QueryTicket>> tickets(kSessions);
  std::vector<std::unique_ptr<Session>> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    WorkloadOptions wopts;
    wopts.num_queries = 128;
    wopts.selectivity = 0.02;
    wopts.type = s % 2 == 0 ? QueryType::kSum : QueryType::kCount;
    wopts.seed = 100 + s;
    streams.push_back(gen.Generate(wopts));
    SessionOptions sopts;
    sopts.config.cracking.group_crack = true;
    sessions.push_back(db.OpenSession(std::move(sopts)));
  }
  // All batches in flight at once, racing on the shared cracking index.
  for (size_t s = 0; s < kSessions; ++s) {
    tickets[s] = sessions[s]->SubmitBatch(ToQueries("R", "A", streams[s]));
  }
  for (size_t s = 0; s < kSessions; ++s) {
    for (size_t i = 0; i < tickets[s].size(); ++i) {
      ASSERT_TRUE(tickets[s][i].status().ok()) << s << "/" << i;
      const RangeQuery& q = streams[s][i];
      if (q.type == QueryType::kCount) {
        EXPECT_EQ(tickets[s][i].result().count, oracle.Count(q.lo, q.hi));
      } else {
        EXPECT_EQ(tickets[s][i].result().sum, oracle.Sum(q.lo, q.hi));
      }
    }
  }
  EXPECT_EQ(db.catalog()->num_indexes(), 1u);  // all sessions shared it
}

// ------------------------------------------------- updates through sessions

TEST(SessionUpdateTest, InsertDeleteCarryTxnIdentity) {
  Database db;
  UpdatableIndex index(Column::UniqueRandom("A", 2000, 48), IndexConfig{},
                       db.lock_manager(), "R/A");
  auto session = db.OpenSession();

  RowId id = 0;
  ASSERT_TRUE(session->Insert(&index, 99999, &id).ok());
  ASSERT_TRUE(session->Insert(&index, 99998, nullptr).ok());
  EXPECT_EQ(index.pending_inserts(), 2u);
  ASSERT_TRUE(session->Delete(&index, 99999, id).ok());
  EXPECT_EQ(index.pending_inserts(), 1u);
  EXPECT_TRUE(session->Delete(&index, 99999, id).IsNotFound());
  // User transactions auto-commit: no locks survive the operations.
  EXPECT_EQ(db.lock_manager()->num_locked_resources(), 0u);
}

TEST(SessionUpdateTest, QueryRefinementSkippedUnderUserLock) {
  Database db;
  UpdatableIndex index(Column::UniqueRandom("A", 5000, 49), IndexConfig{},
                       db.lock_manager(), "R/A");
  ThreadPool pool(2);
  auto session = Session::OnIndex(&index, &pool);

  // Another user transaction holds a lock on the column: the cracking
  // refinement probe (Section 3.3 conflict avoidance) must see it and
  // answer by scanning.
  ASSERT_TRUE(db.lock_manager()->Acquire(7, "R/A", LockMode::kS).ok());
  QueryTicket t = session->Submit(Query::Count("", "", 1000, 2000));
  ASSERT_TRUE(t.status().ok());
  EXPECT_EQ(t.result().count, 1000u);
  EXPECT_TRUE(t.stats().refinement_skipped);
  db.lock_manager()->ReleaseAll(7);

  // Lock released: refinement proceeds again.
  QueryTicket t2 = session->Submit(Query::Count("", "", 1000, 2000));
  ASSERT_TRUE(t2.status().ok());
  EXPECT_FALSE(t2.stats().refinement_skipped);
}

// ------------------------------------------------------ session-bound plans

TEST(SessionPlanTest, PlanUsesSessionConfigAndIdentity) {
  Database db;
  FillDb(&db, 3000, 50);
  SessionOptions sopts;
  sopts.client_id = 9;
  auto session = db.OpenSession(std::move(sopts));

  QueryContext ctx;
  uint64_t count = 0;
  Status s = PlanBuilder(session.get(), "R")
                 .SelectRange("A", 100, 600)
                 .Count(&ctx, &count);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 500u);
  EXPECT_EQ(ctx.client_id, 9u);
  EXPECT_EQ(ctx.session_id, session->session_id());
  EXPECT_EQ(ctx.txn_id, session->txn_id());
}

TEST(SessionTest, DirectSessionWithoutPoolIsSyncOnly) {
  Column column = Column::UniqueRandom("A", 1000, 53);
  CrackingIndex index(&column);
  auto session = Session::OnIndex(&index, /*pool=*/nullptr);
  // Synchronous path works without a pool.
  QueryResult result;
  ASSERT_TRUE(session->Execute(Query::Count("", "", 100, 300), &result).ok());
  EXPECT_EQ(result.count, 200u);
  // Async submission fails the ticket instead of crashing.
  QueryTicket t = session->Submit(Query::Count("", "", 0, 10));
  EXPECT_TRUE(t.status().IsInvalidArgument());
}

TEST(SessionPlanTest, DirectSessionRejectsPlans) {
  Column column = Column::UniqueRandom("A", 100, 51);
  CrackingIndex index(&column);
  ThreadPool pool(1);
  auto session = Session::OnIndex(&index, &pool);
  QueryContext ctx;
  uint64_t count = 0;
  Status s = PlanBuilder(session.get(), "R")
                 .SelectRange("A", 0, 10)
                 .Count(&ctx, &count);
  EXPECT_TRUE(s.IsInvalidArgument());
}

// ------------------------------------------------- one-shot replacement
//
// The deprecated Database::Count/Sum shims are gone (the build runs with
// -Werror=deprecated-declarations, so they could not linger at call
// sites); a throwaway single-query session is the idiom that replaces
// them.

TEST(SessionShimTest, SingleQuerySessionsReplaceOneShotCalls) {
  Database db;
  FillDb(&db, 1000, 52);
  IndexConfig config;
  uint64_t count = 0;
  {
    SessionOptions sopts;
    sopts.config = config;
    ASSERT_TRUE(
        db.OpenSession(std::move(sopts))->Count("R", "A", 100, 300, &count)
            .ok());
  }
  EXPECT_EQ(count, 200u);
  int64_t sum = 0;
  {
    SessionOptions sopts;
    sopts.config = config;
    ASSERT_TRUE(
        db.OpenSession(std::move(sopts))->Sum("R", "A", 100, 300, &sum).ok());
  }
  EXPECT_EQ(sum, (100 + 299) * 200 / 2);
}

// ------------------------------------------------------- timed ticket wait
//
// QueryTicket::WaitFor is what lets the network server enforce per-request
// deadlines without detaching the ticket: a timed-out waiter answers
// TimedOut over the wire while the engine-side execution still completes
// and remains readable from the very same ticket.

TEST(SessionTicketTest, WaitForTimesOutWhileQueryIsStuck) {
  Column column = Column::UniqueRandom("A", 1000, 54);
  CrackingIndex index(&column);
  // One worker, deliberately wedged: the submitted query cannot start
  // until the gate opens, so the timed wait must expire.
  ThreadPool pool(1);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lk(gate_mu);
    gate_cv.wait(lk, [&] { return gate_open; });
  });
  auto session = Session::OnIndex(&index, &pool);
  QueryTicket ticket = session->Submit(Query::Count("", "", 100, 300));
  EXPECT_FALSE(ticket.WaitFor(std::chrono::milliseconds(20)));
  EXPECT_FALSE(ticket.done());
  {
    std::lock_guard<std::mutex> lk(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  // Late completion: the same ticket, not a replacement, delivers the
  // result once the worker gets to run.
  ticket.Wait();
  EXPECT_TRUE(ticket.WaitFor(std::chrono::milliseconds(0)));
  ASSERT_TRUE(ticket.status().ok());
  EXPECT_EQ(ticket.result().count, 200u);
  session.reset();
}

TEST(SessionTicketTest, WaitForOnTerminalTicketsIsImmediate) {
  // A never-submitted ticket is terminally failed — "complete" for any
  // timeout, including zero.
  QueryTicket never;
  EXPECT_TRUE(never.WaitFor(std::chrono::milliseconds(0)));
  EXPECT_TRUE(never.status().IsInvalidArgument());
  // An already-completed ticket returns true without consuming the wait.
  Column column = Column::UniqueRandom("A", 100, 55);
  CrackingIndex index(&column);
  ThreadPool pool(1);
  auto session = Session::OnIndex(&index, &pool);
  QueryTicket done = session->Submit(Query::Count("", "", 0, 50));
  done.Wait();
  EXPECT_TRUE(done.WaitFor(std::chrono::milliseconds(0)));
  session.reset();
}

}  // namespace
}  // namespace adaptidx
