#ifndef ADAPTIDX_UTIL_WIRE_H_
#define ADAPTIDX_UTIL_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

namespace adaptidx {

/// \file
/// The strict little-endian codec shared by the wire protocol
/// (server/protocol.h) and the durability subsystem (durability/wal.h,
/// durability/checkpoint.h). Both formats live or die by the same two
/// disciplines: every length is validated against the remaining bytes
/// *before* any allocation, and every decoder ends with an `Exhausted()`
/// acceptance so trailing garbage is rejected, not ignored.

/// \brief Append-only little-endian byte writer backing every payload
/// encoder. Thread-compatible value type (confine to one thread).
class WireWriter {
 public:
  /// \brief Appends one byte.
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  /// \brief Appends a little-endian u32.
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  /// \brief Appends a little-endian u64.
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  /// \brief Appends a little-endian i64 (two's-complement bit cast).
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// \brief Appends a u32 length prefix followed by the bytes.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  /// \brief The accumulated bytes.
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// \brief Bounds-checked little-endian reader: every `Get` fails (returns
/// false and poisons `ok()`) instead of reading past the end, so decoders
/// are straight-line code with one error check at the close. Thread-
/// compatible value type.
class WireReader {
 public:
  /// \brief Reads `size` bytes starting at `data`.
  WireReader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), n_(size) {}

  /// \brief Reads one byte.
  bool GetU8(uint8_t* v) {
    if (n_ < 1) return Fail();
    *v = p_[0];
    Skip(1);
    return true;
  }
  /// \brief Reads a little-endian u32.
  bool GetU32(uint32_t* v) {
    if (n_ < 4) return Fail();
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    Skip(4);
    return true;
  }
  /// \brief Reads a little-endian u64.
  bool GetU64(uint64_t* v) {
    if (n_ < 8) return Fail();
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    Skip(8);
    return true;
  }
  /// \brief Reads a little-endian i64.
  bool GetI64(int64_t* v) {
    uint64_t u = 0;
    if (!GetU64(&u)) return false;
    std::memcpy(v, &u, sizeof(*v));
    return true;
  }
  /// \brief Reads a u32-length-prefixed string; the length is validated
  /// against the remaining bytes before any allocation.
  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (len > n_) return Fail();
    s->assign(reinterpret_cast<const char*>(p_), len);
    Skip(len);
    return true;
  }

  size_t remaining() const { return n_; }  ///< \brief Unread byte count.
  bool ok() const { return ok_; }          ///< \brief No read ever failed.
  /// \brief True iff every byte was consumed and no read failed — the
  /// strict-decode acceptance every payload decoder ends with.
  bool Exhausted() const { return ok_ && n_ == 0; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }
  void Skip(size_t k) {
    p_ += k;
    n_ -= k;
  }

  const uint8_t* p_;
  size_t n_;
  bool ok_ = true;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_UTIL_WIRE_H_
