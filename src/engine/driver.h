#ifndef ADAPTIDX_ENGINE_DRIVER_H_
#define ADAPTIDX_ENGINE_DRIVER_H_

#include <cstdint>
#include <vector>

#include "core/adaptive_index.h"
#include "engine/operators.h"
#include "util/histogram.h"
#include "workload/workload.h"

namespace adaptidx {

/// \brief One completed query with its instrumentation, as recorded by the
/// driver.
struct PerQueryRecord {
  RangeQuery query;
  QueryResult result;
  QueryStats stats;
  uint32_t client_id = 0;
  size_t client_seq = 0;  ///< index within the client's own stream
};

/// \brief Aggregated per-query statistics over a span of records — the
/// shared accumulation used by the driver's run totals and by benchmarks
/// that break a sequence into buckets/quarters.
struct StatTotals {
  int64_t wait_ns = 0;
  int64_t crack_ns = 0;
  int64_t init_ns = 0;
  int64_t read_ns = 0;
  uint64_t conflicts = 0;
  uint64_t cracks = 0;
  uint64_t refinements_skipped = 0;

  /// \brief Folds one query's stats into the totals.
  void Add(const QueryStats& s) {
    wait_ns += s.wait_ns;
    crack_ns += s.crack_ns;
    init_ns += s.init_ns;
    read_ns += s.read_ns;
    conflicts += s.conflicts;
    cracks += s.cracks;
    refinements_skipped += s.refinement_skipped ? 1 : 0;
  }
};

/// \brief Sums the stats of records `[from, to)` (clamped to the vector).
StatTotals SumStats(const std::vector<PerQueryRecord>& records, size_t from,
                    size_t to);

/// \brief Outcome of a multi-client run.
struct RunResult {
  Status status;
  double total_seconds = 0;    ///< wall time until the last client finished
  double throughput_qps = 0;   ///< queries / total_seconds
  size_t num_queries = 0;
  size_t num_clients = 0;
  Histogram response_hist;     ///< per-query response times (ns)
  uint64_t total_conflicts = 0;
  int64_t total_wait_ns = 0;
  int64_t total_crack_ns = 0;
  int64_t total_init_ns = 0;
  int64_t total_read_ns = 0;   ///< time reading data under read latches
  uint64_t total_cracks = 0;
  uint64_t refinements_skipped = 0;
  /// Per-query records sorted by completion time (the "query sequence" axis
  /// of Figures 11 and 15). Empty unless record_per_query.
  std::vector<PerQueryRecord> records;
};

/// \brief Options of a driver run.
struct DriverOptions {
  size_t num_clients = 1;
  bool record_per_query = true;
  /// Submission granularity per client. 1 reproduces the paper's strictly
  /// synchronous per-client streams (a client never races past its own
  /// blocked query). Larger values model batch admission: batches are
  /// double-buffered (up to 2×batch_size queries in flight per client),
  /// which keeps the pool busy across batch boundaries and feeds queued
  /// crack bounds to group-aware refinement
  /// (CrackingOptions::group_crack). The default amortizes the per-batch
  /// client wake-up over enough queries that even very cheap (fully
  /// refined) queries are not dominated by it.
  size_t batch_size = 32;
};

/// \brief Multi-client query driver reproducing the paper's experimental
/// set-up (Section 6.2) on the public session API: the query sequence is
/// split into `num_clients` contiguous streams ("we use 2 clients ... each
/// one fires 512 queries"), every client is a `Session` submitting its
/// stream as asynchronous batches onto a shared pool (one worker per
/// client, so aggregate parallelism matches the paper's
/// thread-per-client set-up), all clients start together on a barrier, and
/// the reported total time is "the time perceived by the last client to
/// receive all answers".
class Driver {
 public:
  static RunResult Run(AdaptiveIndex* index,
                       const std::vector<RangeQuery>& queries,
                       const DriverOptions& opts);
};

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_DRIVER_H_
