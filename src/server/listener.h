#ifndef ADAPTIDX_SERVER_LISTENER_H_
#define ADAPTIDX_SERVER_LISTENER_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace adaptidx {
namespace server {

/// \brief Makes `fd` non-blocking; returns false on fcntl failure.
bool SetNonBlocking(int fd);

/// \brief Disables Nagle on a TCP socket (request/response traffic); best
/// effort.
void SetNoDelay(int fd);

/// \brief A bound, listening, non-blocking TCP socket.
///
/// `Listen` with port 0 binds an ephemeral port (tests and benches run
/// many servers concurrently without port collisions); the chosen port is
/// readable via `port()`. The owner registers `fd()` on its `EventLoop`
/// and calls `Accept` from the readiness callback until it reports
/// would-block.
///
/// Thread-safety: confined to the owning (loop) thread after `Listen`.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// \brief Creates/binds/listens a non-blocking socket on `host:port`
  /// with SO_REUSEADDR; port 0 picks an ephemeral port.
  Status Listen(const std::string& host, uint16_t port);

  /// \brief Accepts one pending connection into `*client_fd` (already
  /// non-blocking, TCP_NODELAY). Returns OK on success, Busy when no
  /// connection is pending (EAGAIN), Corruption on a real accept failure.
  Status Accept(int* client_fd);

  /// \brief Closes the listening socket (stops accepting); idempotent.
  void Close();

  int fd() const { return fd_; }           ///< \brief Listening fd; -1 when closed.
  uint16_t port() const { return port_; }  ///< \brief Bound port (after Listen).

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace server
}  // namespace adaptidx

#endif  // ADAPTIDX_SERVER_LISTENER_H_
