/// \file Quickstart: load a table, open a session, run range queries, and
/// watch the adaptive index build itself as a side effect of query
/// processing.
///
///   $ ./build/examples/quickstart
///
/// Walks through the session-based query API: creating a table of unique
/// random integers, opening a `Session` that pins database cracking as its
/// access method, running Q1 (count) and Q2 (sum) range queries — first
/// synchronously, then as an asynchronous batch of `Query` descriptors —
/// and inspecting the per-query stats that show the index getting cheaper
/// to use with every query.

#include <cstdio>

#include "engine/database.h"
#include "storage/column.h"
#include "util/stopwatch.h"

using namespace adaptidx;

int main() {
  constexpr size_t kRows = 1'000'000;

  // 1. Create a table. Columns are dense aligned arrays (one per attribute).
  Database db;
  std::vector<Column> columns;
  columns.push_back(Column::UniqueRandom("A", kRows, /*seed=*/2012));
  Column b("B", {});
  for (size_t i = 0; i < kRows; ++i) b.Append(static_cast<Value>(i % 1000));
  columns.push_back(std::move(b));
  if (Status s = db.CreateTable("R", std::move(columns)); !s.ok()) {
    std::fprintf(stderr, "CreateTable failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Loaded table R with %zu rows (columns A, B), unsorted.\n\n",
              kRows);

  // 2. Open a session. The session pins the access method — database
  // cracking with piece-grained latches (the paper's best configuration) —
  // and owns the client/transaction identity of everything it submits.
  // No index is built up front; the first query initializes it.
  SessionOptions sopts;
  sopts.config.method = IndexMethod::kCrack;
  auto session = db.OpenSession(sopts);

  // 3. Run a sequence of range queries and watch response time fall while
  // the crack count rises.
  std::printf("%-6s %-28s %12s %10s %10s\n", "query",
              "predicate", "result", "ms", "cracks");
  Value lo = 100'000;
  for (int i = 0; i < 10; ++i, lo += 70'000) {
    const Value hi = lo + 50'000;
    uint64_t count = 0;
    QueryStats stats;
    StopWatch sw;
    if (Status s = session->Count("R", "A", lo, hi, &count, &stats);
        !s.ok()) {
      std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const double ms = sw.ElapsedMillis();
    char pred[64];
    std::snprintf(pred, sizeof(pred), "count(*) where %lld<=A<%lld",
                  static_cast<long long>(lo), static_cast<long long>(hi));
    std::printf("%-6d %-28s %12llu %10.3f %10llu\n", i + 1, pred,
                static_cast<unsigned long long>(count), ms,
                static_cast<unsigned long long>(stats.cracks));
  }

  // 4. Asynchronous submission: build unified Query descriptors, submit
  // them as one batch, and collect the answers through the tickets. The
  // batch executes concurrently on the database's shared pool — the
  // admission path that batch-aware refinement (group cracking) feeds on.
  std::vector<Query> batch;
  batch.push_back(Query::Sum("R", "A", 100'000, 150'000));
  batch.push_back(Query::Count("R", "A", 400'000, 600'000));
  batch.push_back(Query::SumOther("R", "A", "B", 100'000, 150'000));
  auto tickets = session->SubmitBatch(std::move(batch));
  tickets[0].Wait();  // explicit wait; result()/stats() also wait implicitly

  std::printf("\nsum(A)  where 100000<=A<150000 = %lld (refinements: %llu — "
              "bounds were already cracked)\n",
              static_cast<long long>(tickets[0].result().sum),
              static_cast<unsigned long long>(tickets[0].stats().cracks));
  std::printf("count(*) where 400000<=A<600000 = %llu\n",
              static_cast<unsigned long long>(tickets[1].result().count));
  // The two-column plan of the paper's Figure 6: select on A, fetch
  // aligned values of B positionally, aggregate.
  std::printf("sum(B)  where 100000<=A<150000 = %lld (select on A, "
              "positional fetch of B)\n",
              static_cast<long long>(tickets[2].result().sum));

  std::printf("\nDone. The index now exists purely as a side effect of the "
              "queries above;\nno CREATE INDEX was ever issued.\n");
  return 0;
}
