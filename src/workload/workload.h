#ifndef ADAPTIDX_WORKLOAD_WORKLOAD_H_
#define ADAPTIDX_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/types.h"

namespace adaptidx {

/// \brief The paper's two query templates (Section 6) plus a min/max
/// variant exercising the unified execution path:
///   Q1: select count(*)        from R where v1 < A < v2
///   Q2: select sum(A)          from R where v1 < A < v2
///   Q3: select min(A), max(A)  from R where v1 < A < v2
enum class QueryType { kCount, kSum, kMinMax };

std::string ToString(QueryType type);

/// \brief A range query with the predicate normalized to the half-open
/// integer range [lo, hi).
struct RangeQuery {
  Value lo;
  Value hi;
  QueryType type = QueryType::kCount;
};

/// \brief How query ranges are placed over the domain.
enum class QueryDistribution {
  /// Uniformly random placement — the paper's default ("random range
  /// queries").
  kUniform,
  /// Skewed placement concentrating on the low end of the domain
  /// (hotspot workloads).
  kSkewed,
  /// Left-to-right sliding window — adversarial for plain cracking and the
  /// motivating case for stochastic cracking [16].
  kSequential,
  /// Zipfian bucket popularity: the domain is divided into buckets whose
  /// access frequency follows a Zipf law with exponent `skew`, and the
  /// bucket ranks are scattered over the domain by `seed` (hot spots are
  /// not necessarily adjacent).
  kZipfian,
  /// A narrow hotspot (`hotspot_width` of the domain) receives all queries;
  /// every `phase_length` queries it jumps to a fresh random location, so
  /// an index tuned to the old hotspot restarts from scratch.
  kShiftingHotspot,
  /// Cycles uniform -> sequential -> skewed placement every `phase_length`
  /// queries — no single placement assumption holds for long.
  kPeriodicPhases,
  /// Adversary against plain cracking: simulates the cracks the index
  /// would create and always queries at the edge of the largest still
  /// uncracked region, keeping every reorganization maximally expensive.
  kAdversarial,
  /// Mixed OLTP/OLAP read profile: mostly narrow skewed point-range
  /// lookups, with an `olap_fraction` of wide uniform scans of
  /// `olap_selectivity` coverage.
  kOltpOlap,
};

std::string ToString(QueryDistribution dist);

/// \brief Parameters of a generated query sequence.
struct WorkloadOptions {
  size_t num_queries = 1024;
  /// Fraction of the value domain covered by each query; the paper sweeps
  /// {0.01%, 0.1%, 1%, 10%, 50%, 90%}.
  double selectivity = 0.0001;
  QueryType type = QueryType::kSum;
  QueryDistribution distribution = QueryDistribution::kUniform;
  /// Skew intensity in [0, 1) for kSkewed; Zipf exponent for kZipfian.
  double skew = 0.8;
  uint64_t seed = 7;
  /// Queries per phase for kShiftingHotspot / kPeriodicPhases.
  size_t phase_length = 128;
  /// Hotspot extent as a fraction of the domain for kShiftingHotspot.
  double hotspot_width = 0.05;
  /// Fraction of kOltpOlap queries that are wide analytical scans.
  double olap_fraction = 0.1;
  /// Domain coverage of each analytical scan in kOltpOlap.
  double olap_selectivity = 0.2;
  /// Fraction of `GenerateMixed` operations that are writes (inserts and
  /// deletes); ignored by `Generate`.
  double write_fraction = 0.1;
};

/// \brief Paper-style contiguous partitioning of a query sequence into
/// per-client streams (Section 6.2: each client fires a contiguous slice of
/// the sequence). Returns `[begin, end)` index pairs, one per client;
/// remainder queries go to the leading clients. `num_clients` is clamped to
/// `num_queries`.
std::vector<std::pair<size_t, size_t>> SplitStreams(size_t num_queries,
                                                    size_t num_clients);

/// \brief One operation of a mixed read/write stream (`GenerateMixed`).
struct MixedOp {
  enum class Kind { kQuery, kInsert, kDelete };
  Kind kind = Kind::kQuery;
  /// Valid when kind == kQuery.
  RangeQuery query{0, 0, QueryType::kCount};
  /// Insert or delete key when kind != kQuery.
  Value value = 0;
};

/// \brief Deterministic range-query generator over an integer value domain.
class WorkloadGenerator {
 public:
  /// \brief Domain is the half-open value interval [domain_lo, domain_hi)
  /// that queries draw bounds from (for the paper's data set of n unique
  /// integers: [0, n)).
  WorkloadGenerator(Value domain_lo, Value domain_hi)
      : domain_lo_(domain_lo), domain_hi_(domain_hi) {}

  /// \brief Generates `opts.num_queries` queries of width
  /// `selectivity * |domain|` (at least 1), placed per the distribution.
  std::vector<RangeQuery> Generate(const WorkloadOptions& opts) const;

  /// \brief Generates `opts.num_queries` operations where a
  /// `opts.write_fraction` share are writes (3:1 inserts to deletes;
  /// deletes target previously inserted keys) and the rest are queries
  /// placed per the distribution — the OLTP-vs-OLAP interference profile.
  std::vector<MixedOp> GenerateMixed(const WorkloadOptions& opts) const;

  Value domain_lo() const { return domain_lo_; }
  Value domain_hi() const { return domain_hi_; }

 private:
  Value domain_lo_;
  Value domain_hi_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_WORKLOAD_WORKLOAD_H_
