#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/cracking_index.h"
#include "core/scan_index.h"
#include "cracking/crack_kernels.h"
#include "cracking/cracker_array.h"
#include "cracking/kernel_tiers.h"
#include "cracking/reference_kernels.h"
#include "cracking/span_kernels.h"
#include "storage/column.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

std::vector<CrackerEntry> MakeEntries(const std::vector<Value>& values) {
  std::vector<CrackerEntry> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(CrackerEntry{static_cast<RowId>(i), values[i]});
  }
  return out;
}

std::multiset<Value> ValueSet(const CrackerArray& a, Position b, Position e) {
  std::multiset<Value> s;
  for (Position i = b; i < e; ++i) s.insert(a.ValueAt(i));
  return s;
}

// ----------------------------------------------------- CrackInTwo basics

TEST(CrackInTwoTest, SimplePartition) {
  auto entries = MakeEntries({5, 1, 9, 3, 7});
  PairAccessor acc(entries.data());
  const Position split = CrackInTwo(acc, 0, 5, 5);
  EXPECT_EQ(split, 2u);
  EXPECT_TRUE(VerifyCrackInTwo(acc, 0, split, 5, 5));
}

TEST(CrackInTwoTest, AllBelowPivot) {
  auto entries = MakeEntries({1, 2, 3});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 0, 3, 100), 3u);
}

TEST(CrackInTwoTest, AllAtOrAbovePivot) {
  auto entries = MakeEntries({5, 6, 7});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 0, 3, 5), 0u);
}

TEST(CrackInTwoTest, EmptyRange) {
  auto entries = MakeEntries({1, 2, 3});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 1, 1, 2), 1u);
}

TEST(CrackInTwoTest, SingleElementBelow) {
  auto entries = MakeEntries({1});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 0, 1, 5), 1u);
}

TEST(CrackInTwoTest, SingleElementAtPivot) {
  auto entries = MakeEntries({5});
  PairAccessor acc(entries.data());
  EXPECT_EQ(CrackInTwo(acc, 0, 1, 5), 0u);
}

TEST(CrackInTwoTest, DuplicateValuesAroundPivot) {
  auto entries = MakeEntries({5, 5, 1, 5, 1});
  PairAccessor acc(entries.data());
  const Position split = CrackInTwo(acc, 0, 5, 5);
  EXPECT_EQ(split, 2u);
  EXPECT_TRUE(VerifyCrackInTwo(acc, 0, split, 5, 5));
}

TEST(CrackInTwoTest, SubrangeOnlyTouched) {
  auto entries = MakeEntries({100, 4, 2, 9, 200});
  PairAccessor acc(entries.data());
  CrackInTwo(acc, 1, 4, 5);
  // Positions outside [1, 4) are untouched.
  EXPECT_EQ(entries[0].value, 100);
  EXPECT_EQ(entries[4].value, 200);
}

TEST(CrackInTwoTest, PreservesRowIdPairing) {
  Column col = Column::UniqueRandom("a", 100, 5);
  CrackerArray arr(col, ArrayLayout::kRowIdValuePairs);
  arr.CrackTwo(0, 100, 50);
  for (Position i = 0; i < 100; ++i) {
    // Each value must still travel with its original rowID.
    EXPECT_EQ(col[arr.RowIdAt(i)], arr.ValueAt(i));
  }
}

// --------------------------------------------------- CrackInThree basics

TEST(CrackInThreeTest, SimpleThreeWay) {
  auto entries = MakeEntries({5, 1, 9, 3, 7, 2, 8});
  PairAccessor acc(entries.data());
  auto [p1, p2] = CrackInThree(acc, 0, 7, 3, 8);
  EXPECT_EQ(p1, 2u);  // {1, 2}
  EXPECT_EQ(p2, 5u);  // {5, 3, 7}
  for (Position i = 0; i < p1; ++i) EXPECT_LT(acc.ValueAt(i), 3);
  for (Position i = p1; i < p2; ++i) {
    EXPECT_GE(acc.ValueAt(i), 3);
    EXPECT_LT(acc.ValueAt(i), 8);
  }
  for (Position i = p2; i < 7; ++i) EXPECT_GE(acc.ValueAt(i), 8);
}

TEST(CrackInThreeTest, EmptyMiddle) {
  auto entries = MakeEntries({1, 10, 2, 20});
  PairAccessor acc(entries.data());
  auto [p1, p2] = CrackInThree(acc, 0, 4, 5, 6);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, 2u);
}

TEST(CrackInThreeTest, AllInMiddle) {
  auto entries = MakeEntries({5, 6, 7});
  PairAccessor acc(entries.data());
  auto [p1, p2] = CrackInThree(acc, 0, 3, 5, 8);
  EXPECT_EQ(p1, 0u);
  EXPECT_EQ(p2, 3u);
}

TEST(CrackInThreeTest, EqualBounds) {
  auto entries = MakeEntries({3, 1, 5});
  PairAccessor acc(entries.data());
  auto [p1, p2] = CrackInThree(acc, 0, 3, 3, 3);
  EXPECT_EQ(p1, p2);
  for (Position i = 0; i < p1; ++i) EXPECT_LT(acc.ValueAt(i), 3);
}

// -------------------------------------------------------- Scan kernels

TEST(ScanKernelsTest, ScanCountAndSum) {
  auto entries = MakeEntries({1, 5, 3, 8, 2});
  PairAccessor acc(entries.data());
  EXPECT_EQ(ScanCount(acc, 0, 5, 2, 6), 3u);  // {5, 3, 2}
  EXPECT_EQ(ScanSum(acc, 0, 5, 2, 6), 10);
}

TEST(ScanKernelsTest, PositionalSum) {
  auto entries = MakeEntries({1, 5, 3});
  PairAccessor acc(entries.data());
  EXPECT_EQ(PositionalSum(acc, 0, 3), 9);
  EXPECT_EQ(PositionalSum(acc, 1, 2), 5);
  EXPECT_EQ(PositionalSum(acc, 2, 2), 0);
}

// ------------------------------------------- CrackerArray layout parity

class CrackerArrayLayoutTest : public ::testing::TestWithParam<ArrayLayout> {};

TEST_P(CrackerArrayLayoutTest, BuildFromColumn) {
  Column col("a", {30, 10, 20});
  CrackerArray arr(col, GetParam());
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.ValueAt(0), 30);
  EXPECT_EQ(arr.RowIdAt(0), 0u);
  EXPECT_EQ(arr.ValueAt(2), 20);
  EXPECT_EQ(arr.RowIdAt(2), 2u);
}

TEST_P(CrackerArrayLayoutTest, CrackTwoPartitions) {
  Column col = Column::UniqueRandom("a", 512, 11);
  CrackerArray arr(col, GetParam());
  const Position split = arr.CrackTwo(0, 512, 256);
  EXPECT_EQ(split, 256u);  // unique 0..511: exactly 256 below the pivot
  for (Position i = 0; i < split; ++i) EXPECT_LT(arr.ValueAt(i), 256);
  for (Position i = split; i < 512; ++i) EXPECT_GE(arr.ValueAt(i), 256);
}

TEST_P(CrackerArrayLayoutTest, CrackThreePartitions) {
  Column col = Column::UniqueRandom("a", 512, 13);
  CrackerArray arr(col, GetParam());
  auto [p1, p2] = arr.CrackThree(0, 512, 100, 400);
  EXPECT_EQ(p1, 100u);
  EXPECT_EQ(p2, 400u);
}

TEST_P(CrackerArrayLayoutTest, CrackPreservesMultiset) {
  Column col = Column::UniformRandom("a", 300, 0, 50, 17);
  CrackerArray arr(col, GetParam());
  auto before = ValueSet(arr, 0, 300);
  arr.CrackTwo(0, 300, 25);
  arr.CrackThree(0, 300, 10, 40);
  EXPECT_EQ(ValueSet(arr, 0, 300), before);
}

TEST_P(CrackerArrayLayoutTest, SortRangeSortsAndKeepsPairs) {
  Column col = Column::UniqueRandom("a", 200, 19);
  CrackerArray arr(col, GetParam());
  arr.SortRange(50, 150);
  for (Position i = 51; i < 150; ++i) {
    EXPECT_LE(arr.ValueAt(i - 1), arr.ValueAt(i));
  }
  for (Position i = 0; i < 200; ++i) {
    EXPECT_EQ(col[arr.RowIdAt(i)], arr.ValueAt(i));
  }
}

TEST_P(CrackerArrayLayoutTest, ScanRangesMatchKernel) {
  Column col = Column::UniformRandom("a", 400, 0, 100, 23);
  CrackerArray arr(col, GetParam());
  uint64_t count = 0;
  int64_t sum = 0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] >= 20 && col[i] < 60) {
      ++count;
      sum += col[i];
    }
  }
  EXPECT_EQ(arr.ScanCountRange(0, 400, 20, 60), count);
  EXPECT_EQ(arr.ScanSumRange(0, 400, 20, 60), sum);
}

TEST_P(CrackerArrayLayoutTest, PositionalSumWholeArray) {
  Column col = Column::Sequential("a", 100);
  CrackerArray arr(col, GetParam());
  EXPECT_EQ(arr.PositionalSumRange(0, 100), 99 * 100 / 2);
}

TEST_P(CrackerArrayLayoutTest, CollectRowIds) {
  Column col("a", {30, 10, 20});
  CrackerArray arr(col, GetParam());
  std::vector<RowId> ids;
  arr.CollectRowIds(0, 3, &ids);
  EXPECT_EQ(ids, (std::vector<RowId>{0, 1, 2}));
}

TEST_P(CrackerArrayLayoutTest, LowerBoundInSorted) {
  Column col = Column::Sequential("a", 100);
  CrackerArray arr(col, GetParam());
  EXPECT_EQ(arr.LowerBoundInSorted(0, 100, 0), 0u);
  EXPECT_EQ(arr.LowerBoundInSorted(0, 100, 50), 50u);
  EXPECT_EQ(arr.LowerBoundInSorted(0, 100, 1000), 100u);
  EXPECT_EQ(arr.LowerBoundInSorted(20, 80, 10), 20u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, CrackerArrayLayoutTest,
                         ::testing::Values(ArrayLayout::kRowIdValuePairs,
                                           ArrayLayout::kPairOfArrays),
                         [](const auto& info) {
                           return info.param == ArrayLayout::kRowIdValuePairs
                                      ? "Pairs"
                                      : "SplitArrays";
                         });

// ------------------------------------- Property sweep: random pivots

struct KernelPropertyParam {
  size_t n;
  uint64_t seed;
  bool duplicates;
};

class KernelPropertyTest
    : public ::testing::TestWithParam<KernelPropertyParam> {};

TEST_P(KernelPropertyTest, CrackInTwoInvariantHolds) {
  const auto p = GetParam();
  Column col = p.duplicates
                   ? Column::UniformRandom("a", p.n, 0,
                                           static_cast<Value>(p.n / 4 + 1),
                                           p.seed)
                   : Column::UniqueRandom("a", p.n, p.seed);
  CrackerArray arr(col, ArrayLayout::kPairOfArrays);
  auto before = ValueSet(arr, 0, p.n);
  Rng rng(p.seed ^ 0xabc);
  for (int i = 0; i < 16; ++i) {
    const Value pivot = rng.UniformRange(0, static_cast<Value>(p.n) + 1);
    const Position split = arr.CrackTwo(0, p.n, pivot);
    for (Position j = 0; j < split; ++j) ASSERT_LT(arr.ValueAt(j), pivot);
    for (Position j = split; j < p.n; ++j) ASSERT_GE(arr.ValueAt(j), pivot);
  }
  EXPECT_EQ(ValueSet(arr, 0, p.n), before);
}

TEST_P(KernelPropertyTest, CrackInThreeEquivalentToTwoTwos) {
  const auto p = GetParam();
  Column col = p.duplicates
                   ? Column::UniformRandom("a", p.n, 0,
                                           static_cast<Value>(p.n / 4 + 1),
                                           p.seed)
                   : Column::UniqueRandom("a", p.n, p.seed);
  Rng rng(p.seed ^ 0xdef);
  Value lo = rng.UniformRange(0, static_cast<Value>(p.n));
  Value hi = rng.UniformRange(0, static_cast<Value>(p.n));
  if (lo > hi) std::swap(lo, hi);

  CrackerArray three(col, ArrayLayout::kPairOfArrays);
  auto [p1, p2] = three.CrackThree(0, p.n, lo, hi);

  CrackerArray twos(col, ArrayLayout::kPairOfArrays);
  const Position q1 = twos.CrackTwo(0, p.n, lo);
  const Position q2 = twos.CrackTwo(q1, p.n, hi);

  EXPECT_EQ(p1, q1);
  EXPECT_EQ(p2, q2);
  EXPECT_EQ(ValueSet(three, p1, p2), ValueSet(twos, q1, q2));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelPropertyTest,
    ::testing::Values(KernelPropertyParam{1, 1, false},
                      KernelPropertyParam{2, 2, false},
                      KernelPropertyParam{17, 3, false},
                      KernelPropertyParam{256, 4, false},
                      KernelPropertyParam{1000, 5, false},
                      KernelPropertyParam{4096, 6, false},
                      KernelPropertyParam{17, 7, true},
                      KernelPropertyParam{256, 8, true},
                      KernelPropertyParam{1000, 9, true},
                      KernelPropertyParam{4096, 10, true}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_seed" +
             std::to_string(info.param.seed) +
             (info.param.duplicates ? "_dup" : "_uniq");
    });

// =====================================================================
// Differential tests: every branchless/SIMD kernel tier against the
// retained scalar reference kernels — same split positions, same multiset
// per region, VerifyCrackInTwo postcondition, rowID pairing intact — across
// sizes (including the AVX-512 vector-width boundaries), duplicates-heavy
// and all-equal inputs, and both layouts.

/// Input shapes for the differential sweep.
enum class DataShape { kUnique, kDupHeavy, kAllEqual, kSorted, kReversed };

const char* ShapeName(DataShape s) {
  switch (s) {
    case DataShape::kUnique:
      return "unique";
    case DataShape::kDupHeavy:
      return "dup_heavy";
    case DataShape::kAllEqual:
      return "all_equal";
    case DataShape::kSorted:
      return "sorted";
    case DataShape::kReversed:
      return "reversed";
  }
  return "?";
}

std::vector<Value> MakeValues(DataShape shape, size_t n, uint64_t seed) {
  std::vector<Value> v(n);
  Rng rng(seed);
  switch (shape) {
    case DataShape::kUnique: {
      for (size_t i = 0; i < n; ++i) v[i] = static_cast<Value>(i);
      rng.Shuffle(&v);
      break;
    }
    case DataShape::kDupHeavy: {
      const Value m = static_cast<Value>(n / 4 + 1);
      for (size_t i = 0; i < n; ++i) v[i] = rng.UniformRange(0, m);
      break;
    }
    case DataShape::kAllEqual: {
      for (size_t i = 0; i < n; ++i) v[i] = 7;
      break;
    }
    case DataShape::kSorted: {
      for (size_t i = 0; i < n; ++i) v[i] = static_cast<Value>(i);
      break;
    }
    case DataShape::kReversed: {
      for (size_t i = 0; i < n; ++i) v[i] = static_cast<Value>(n - 1 - i);
      break;
    }
  }
  return v;
}

/// Tiers that can execute on this machine, SIMD included only if supported.
std::vector<KernelTier> TestableTiers() {
  std::vector<KernelTier> tiers{KernelTier::kBranchless};
  if (KernelTierSupported(KernelTier::kAvx2)) tiers.push_back(KernelTier::kAvx2);
  if (KernelTierSupported(KernelTier::kAvx512)) {
    tiers.push_back(KernelTier::kAvx512);
  }
  return tiers;
}

std::multiset<Value> Multiset(const std::vector<Value>& v, Position b,
                              Position e) {
  return std::multiset<Value>(v.begin() + static_cast<long>(b),
                              v.begin() + static_cast<long>(e));
}

const size_t kDiffSizes[] = {0,  1,  2,  3,   7,   8,   9,    15,   16,  17,
                             31, 32, 33, 47,  63,  64,  65,   100,  255, 256,
                             257, 1000, 4096, 10007};

TEST(DifferentialKernelTest, CrackInTwoSpanAllTiers) {
  for (size_t n : kDiffSizes) {
    for (DataShape shape :
         {DataShape::kUnique, DataShape::kDupHeavy, DataShape::kAllEqual,
          DataShape::kSorted, DataShape::kReversed}) {
      const std::vector<Value> base = MakeValues(shape, n, 0xC0FFEE + n);
      Rng rng(n * 31 + static_cast<uint64_t>(shape));
      std::vector<Value> pivots{0, 1, static_cast<Value>(n),
                                static_cast<Value>(n) + 1, 7};
      for (int i = 0; i < 4; ++i) {
        pivots.push_back(rng.UniformRange(-2, static_cast<Value>(n) + 2));
      }
      for (const Value pivot : pivots) {
        // Reference run.
        std::vector<Value> rv = base;
        std::vector<RowId> rr(n);
        for (size_t i = 0; i < n; ++i) rr[i] = static_cast<RowId>(i);
        const Position ref_split =
            reference::CrackInTwoSplit(rv.data(), rr.data(), 0, n, pivot);

        for (const KernelTier tier : TestableTiers()) {
          std::vector<Value> tv = base;
          std::vector<RowId> tr(n);
          for (size_t i = 0; i < n; ++i) tr[i] = static_cast<RowId>(i);
          const Position split =
              CrackInTwoSpan(tv.data(), tr.data(), 0, n, pivot, tier);
          SCOPED_TRACE(std::string("n=") + std::to_string(n) + " shape=" +
                       ShapeName(shape) + " pivot=" + std::to_string(pivot) +
                       " tier=" + KernelTierName(tier));
          ASSERT_EQ(split, ref_split);
          SplitAccessor acc(tv.data(), tr.data());
          ASSERT_TRUE(VerifyCrackInTwo(acc, 0, split, n, pivot));
          // Same multiset on each side of the split as the reference.
          ASSERT_EQ(Multiset(tv, 0, split), Multiset(rv, 0, ref_split));
          ASSERT_EQ(Multiset(tv, split, n), Multiset(rv, ref_split, n));
          // Every value still travels with its original rowID.
          for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(tv[i], base[tr[i]]);
          }
        }
      }
    }
  }
}

TEST(DifferentialKernelTest, CrackInThreeSpanAllTiers) {
  for (size_t n : kDiffSizes) {
    for (DataShape shape : {DataShape::kUnique, DataShape::kDupHeavy,
                            DataShape::kAllEqual}) {
      const std::vector<Value> base = MakeValues(shape, n, 0xBEEF + n);
      Rng rng(n * 17 + static_cast<uint64_t>(shape));
      for (int i = 0; i < 4; ++i) {
        Value lo = rng.UniformRange(-2, static_cast<Value>(n) + 2);
        Value hi = rng.UniformRange(-2, static_cast<Value>(n) + 2);
        if (lo > hi) std::swap(lo, hi);

        std::vector<Value> rv = base;
        std::vector<RowId> rr(n);
        for (size_t j = 0; j < n; ++j) rr[j] = static_cast<RowId>(j);
        const auto [q1, q2] =
            reference::CrackInThreeSplit(rv.data(), rr.data(), 0, n, lo, hi);

        for (const KernelTier tier : TestableTiers()) {
          std::vector<Value> tv = base;
          std::vector<RowId> tr(n);
          for (size_t j = 0; j < n; ++j) tr[j] = static_cast<RowId>(j);
          const auto [p1, p2] =
              CrackInThreeSpan(tv.data(), tr.data(), 0, n, lo, hi, tier);
          SCOPED_TRACE(std::string("n=") + std::to_string(n) + " shape=" +
                       ShapeName(shape) + " lo=" + std::to_string(lo) +
                       " hi=" + std::to_string(hi) + " tier=" +
                       KernelTierName(tier));
          ASSERT_EQ(p1, q1);
          ASSERT_EQ(p2, q2);
          ASSERT_EQ(Multiset(tv, 0, p1), Multiset(rv, 0, q1));
          ASSERT_EQ(Multiset(tv, p1, p2), Multiset(rv, q1, q2));
          ASSERT_EQ(Multiset(tv, p2, n), Multiset(rv, q2, n));
          for (size_t j = 0; j < n; ++j) {
            ASSERT_EQ(tv[j], base[tr[j]]);
          }
        }
      }
    }
  }
}

TEST(DifferentialKernelTest, ScanKernelsAllTiers) {
  for (size_t n : kDiffSizes) {
    for (DataShape shape : {DataShape::kUnique, DataShape::kDupHeavy,
                            DataShape::kAllEqual}) {
      const std::vector<Value> v = MakeValues(shape, n, 0xAB + n);
      Rng rng(n * 13 + static_cast<uint64_t>(shape));
      for (int i = 0; i < 4; ++i) {
        Value lo = rng.UniformRange(-2, static_cast<Value>(n) + 2);
        Value hi = rng.UniformRange(-2, static_cast<Value>(n) + 2);
        if (lo > hi) std::swap(lo, hi);
        const uint64_t ref_cnt =
            reference::ScanCountSplit(v.data(), 0, n, lo, hi);
        const int64_t ref_sum = reference::ScanSumSplit(v.data(), 0, n, lo, hi);
        const int64_t ref_pos = reference::PositionalSumSplit(v.data(), 0, n);
        for (const KernelTier tier : TestableTiers()) {
          SCOPED_TRACE(std::string("n=") + std::to_string(n) + " shape=" +
                       ShapeName(shape) + " tier=" + KernelTierName(tier));
          EXPECT_EQ(ScanCountSpan(v.data(), 0, n, lo, hi, tier), ref_cnt);
          EXPECT_EQ(ScanSumSpan(v.data(), 0, n, lo, hi, tier), ref_sum);
          EXPECT_EQ(PositionalSumSpan(v.data(), 0, n, tier), ref_pos);
        }
      }
    }
  }
}

TEST(DifferentialKernelTest, EntryKernelsMatchReference) {
  for (size_t n : kDiffSizes) {
    for (DataShape shape : {DataShape::kUnique, DataShape::kDupHeavy,
                            DataShape::kAllEqual}) {
      const std::vector<Value> base = MakeValues(shape, n, 0x77 + n);
      auto make_entries = [&] {
        std::vector<CrackerEntry> e(n);
        for (size_t i = 0; i < n; ++i) {
          e[i] = CrackerEntry{static_cast<RowId>(i), base[i]};
        }
        return e;
      };
      Rng rng(n * 7 + static_cast<uint64_t>(shape));
      for (int i = 0; i < 4; ++i) {
        const Value pivot = rng.UniformRange(-2, static_cast<Value>(n) + 2);
        Value lo = rng.UniformRange(-2, static_cast<Value>(n) + 2);
        Value hi = rng.UniformRange(-2, static_cast<Value>(n) + 2);
        if (lo > hi) std::swap(lo, hi);
        SCOPED_TRACE(std::string("n=") + std::to_string(n) + " shape=" +
                     ShapeName(shape) + " pivot=" + std::to_string(pivot));

        auto re = make_entries();
        const Position ref_split =
            reference::CrackInTwoPairs(re.data(), 0, n, pivot);
        auto te = make_entries();
        const Position split = CrackInTwoEntries(te.data(), 0, n, pivot);
        ASSERT_EQ(split, ref_split);
        PairAccessor acc(te.data());
        ASSERT_TRUE(VerifyCrackInTwo(acc, 0, split, n, pivot));
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(te[j].value, base[te[j].row_id]);
        }

        auto r3 = make_entries();
        const auto [q1, q2] =
            reference::CrackInThreePairs(r3.data(), 0, n, lo, hi);
        auto t3 = make_entries();
        const auto [p1, p2] = CrackInThreeEntries(t3.data(), 0, n, lo, hi);
        ASSERT_EQ(p1, q1);
        ASSERT_EQ(p2, q2);

        const auto e = make_entries();
        EXPECT_EQ(ScanCountEntries(e.data(), 0, n, lo, hi),
                  reference::ScanCountPairs(e.data(), 0, n, lo, hi));
        EXPECT_EQ(ScanSumEntries(e.data(), 0, n, lo, hi),
                  reference::ScanSumPairs(e.data(), 0, n, lo, hi));
        EXPECT_EQ(PositionalSumEntries(e.data(), 0, n),
                  reference::PositionalSumPairs(e.data(), 0, n));
      }
    }
  }
}

// CrackerArray-level dispatch: forcing each tier must not change any
// observable result on either layout.
TEST(DifferentialKernelTest, CrackerArrayTiersAgree) {
  for (ArrayLayout layout :
       {ArrayLayout::kRowIdValuePairs, ArrayLayout::kPairOfArrays}) {
    Column col = Column::UniformRandom("a", 2000, 0, 500, 99);
    for (const KernelTier tier : TestableTiers()) {
      CrackerArray ref_arr(col, layout, KernelTier::kReference);
      CrackerArray arr(col, layout, tier);
      SCOPED_TRACE(std::string("layout=") +
                   (layout == ArrayLayout::kPairOfArrays ? "split" : "pairs") +
                   " tier=" + KernelTierName(tier));
      const Position rs = ref_arr.CrackTwo(0, 2000, 250);
      const Position ts = arr.CrackTwo(0, 2000, 250);
      ASSERT_EQ(ts, rs);
      const auto [r1, r2] = ref_arr.CrackThree(0, rs, 50, 200);
      const auto [t1, t2] = arr.CrackThree(0, ts, 50, 200);
      ASSERT_EQ(t1, r1);
      ASSERT_EQ(t2, r2);
      EXPECT_EQ(arr.ScanCountRange(0, 2000, 100, 400),
                ref_arr.ScanCountRange(0, 2000, 100, 400));
      EXPECT_EQ(arr.ScanSumRange(0, 2000, 100, 400),
                ref_arr.ScanSumRange(0, 2000, 100, 400));
      EXPECT_EQ(arr.PositionalSumRange(0, 2000),
                ref_arr.PositionalSumRange(0, 2000));
      std::vector<RowId> ids_ref;
      std::vector<RowId> ids;
      ref_arr.CollectRowIdsFiltered(0, 2000, ValueRange{100, 400}, &ids_ref);
      arr.CollectRowIdsFiltered(0, 2000, ValueRange{100, 400}, &ids);
      std::sort(ids_ref.begin(), ids_ref.end());
      std::sort(ids.begin(), ids.end());
      EXPECT_EQ(ids, ids_ref);
      Value mn_ref, mx_ref, mn, mx;
      ref_arr.MinMax(0, 2000, &mn_ref, &mx_ref);
      arr.MinMax(0, 2000, &mn, &mx);
      EXPECT_EQ(mn, mn_ref);
      EXPECT_EQ(mx, mx_ref);
    }
  }
}

// End-to-end: a CrackingIndex running the best SIMD tier answers the same
// queries as one pinned to the reference tier, and its structure invariants
// (crack positions, piece bounds, sorted pieces) hold with the new kernels
// wired in.
TEST(DifferentialKernelTest, CrackingIndexTiersAgreeEndToEnd) {
  Column col = Column::UniqueRandom("a", 20000, 123);
  for (ArrayLayout layout :
       {ArrayLayout::kRowIdValuePairs, ArrayLayout::kPairOfArrays}) {
    CrackingOptions ref_opts;
    ref_opts.mode = ConcurrencyMode::kNone;
    ref_opts.layout = layout;
    ref_opts.kernel_tier = KernelTier::kReference;
    CrackingOptions new_opts = ref_opts;
    new_opts.kernel_tier = KernelTier::kAuto;
    CrackingIndex ref_idx(&col, ref_opts);
    CrackingIndex new_idx(&col, new_opts);
    QueryContext ctx;
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      Value lo = rng.UniformRange(0, 20000);
      Value hi = rng.UniformRange(0, 20000);
      if (lo > hi) std::swap(lo, hi);
      const ValueRange range{lo, hi};
      uint64_t ref_cnt = 0;
      uint64_t new_cnt = 0;
      ASSERT_TRUE(ref_idx.RangeCount(range, &ctx, &ref_cnt).ok());
      ASSERT_TRUE(new_idx.RangeCount(range, &ctx, &new_cnt).ok());
      ASSERT_EQ(new_cnt, ref_cnt);
      int64_t ref_sum = 0;
      int64_t new_sum = 0;
      ASSERT_TRUE(ref_idx.RangeSum(range, &ctx, &ref_sum).ok());
      ASSERT_TRUE(new_idx.RangeSum(range, &ctx, &new_sum).ok());
      ASSERT_EQ(new_sum, ref_sum);
    }
    EXPECT_TRUE(ref_idx.ValidateStructure());
    EXPECT_TRUE(new_idx.ValidateStructure());
    EXPECT_EQ(new_idx.NumCracks(), ref_idx.NumCracks());
  }
}

// The span fast path: for the pair-of-arrays layout the raw arrays are
// exposed and can be fed straight into the span kernels, matching the
// CrackerArray bulk calls; the pairs layout exposes no spans.
TEST(DifferentialKernelTest, SpanFastPathsExposeUnderlyingArrays) {
  Column col = Column::UniformRandom("a", 3000, 0, 700, 31);
  CrackerArray arr(col, ArrayLayout::kPairOfArrays);
  arr.CrackTwo(0, 3000, 350);
  const Value* values = arr.ValuesSpan();
  const RowId* row_ids = arr.RowIdsSpan();
  ASSERT_NE(values, nullptr);
  ASSERT_NE(row_ids, nullptr);
  for (Position i = 0; i < 3000; ++i) {
    ASSERT_EQ(values[i], arr.ValueAt(i));
    ASSERT_EQ(row_ids[i], arr.RowIdAt(i));
  }
  // External span consumers get the same answers as the bulk methods.
  EXPECT_EQ(ScanCountSpan(values, 0, 3000, 100, 500, arr.kernel_tier()),
            arr.ScanCountRange(0, 3000, 100, 500));
  EXPECT_EQ(ScanSumSpan(values, 0, 3000, 100, 500, arr.kernel_tier()),
            arr.ScanSumRange(0, 3000, 100, 500));
  EXPECT_EQ(PositionalSumSpan(values, 0, 3000, arr.kernel_tier()),
            arr.PositionalSumRange(0, 3000));

  CrackerArray pairs_arr(col, ArrayLayout::kRowIdValuePairs);
  EXPECT_EQ(pairs_arr.ValuesSpan(), nullptr);
  EXPECT_EQ(pairs_arr.RowIdsSpan(), nullptr);
}

// CollectRowIdsFiltered with an empty/inverted range must return nothing on
// both layouts (regression: the split path's unsigned width would wrap).
TEST(DifferentialKernelTest, CollectRowIdsFilteredDegenerateRanges) {
  Column col = Column::UniqueRandom("a", 300, 9);
  for (ArrayLayout layout :
       {ArrayLayout::kRowIdValuePairs, ArrayLayout::kPairOfArrays}) {
    CrackerArray arr(col, layout);
    for (const ValueRange range :
         {ValueRange{50, 50}, ValueRange{200, 100}}) {
      std::vector<RowId> ids;
      arr.CollectRowIdsFiltered(0, 300, range, &ids);
      EXPECT_TRUE(ids.empty());
    }
  }
}

// Extreme and degenerate bounds: INT64_MIN lower bound (no predecessor for
// the SIMD tiers' lo-1 compare) and inverted ranges (unsigned-range width
// would wrap) must agree with the reference tier everywhere.
TEST(DifferentialKernelTest, ExtremeAndInvertedBoundsAllTiers) {
  const std::vector<Value> v = MakeValues(DataShape::kUnique, 1000, 42);
  const Value kMin = std::numeric_limits<Value>::min();
  const Value kMax = std::numeric_limits<Value>::max();
  struct Range {
    Value lo;
    Value hi;
  };
  const Range ranges[] = {{kMin, 100},  {kMin, kMax}, {kMin, kMin},
                          {100, 100},   {200, 100},   {kMax, kMin},
                          {-50, 50},    {900, kMax}};
  for (const Range& r : ranges) {
    const uint64_t ref_cnt =
        reference::ScanCountSplit(v.data(), 0, v.size(), r.lo, r.hi);
    const int64_t ref_sum =
        reference::ScanSumSplit(v.data(), 0, v.size(), r.lo, r.hi);
    for (const KernelTier tier : TestableTiers()) {
      SCOPED_TRACE(std::string("lo=") + std::to_string(r.lo) + " hi=" +
                   std::to_string(r.hi) + " tier=" + KernelTierName(tier));
      EXPECT_EQ(ScanCountSpan(v.data(), 0, v.size(), r.lo, r.hi, tier),
                ref_cnt);
      EXPECT_EQ(ScanSumSpan(v.data(), 0, v.size(), r.lo, r.hi, tier), ref_sum);
    }
  }
}

// Regression: ScanIndex::RangeRowIds with an empty/inverted range must
// return no rows (the unsigned-range width would otherwise wrap and match
// nearly everything).
TEST(DifferentialKernelTest, ScanIndexDegenerateRanges) {
  Column col = Column::UniqueRandom("a", 500, 5);
  ScanIndex idx(&col);
  QueryContext ctx;
  for (const ValueRange range :
       {ValueRange{100, 100}, ValueRange{200, 100}, ValueRange{10, 5}}) {
    std::vector<RowId> ids{1, 2, 3};  // stale content must be cleared
    ASSERT_TRUE(idx.RangeRowIds(range, &ctx, &ids).ok());
    EXPECT_TRUE(ids.empty());
    uint64_t cnt = 77;
    ASSERT_TRUE(idx.RangeCount(range, &ctx, &cnt).ok());
    EXPECT_EQ(cnt, 0u);
  }
}

// SortRange exercises both the tandem insertion sort (small ranges) and the
// zip-sort-unzip path (large ranges) on both layouts.
TEST(DifferentialKernelTest, SortRangeCutoffBothPaths) {
  for (ArrayLayout layout :
       {ArrayLayout::kRowIdValuePairs, ArrayLayout::kPairOfArrays}) {
    for (size_t n : {2u, 17u, 128u, 129u, 1000u}) {
      Column col = Column::UniformRandom("a", n, 0, 200, n);
      CrackerArray arr(col, layout);
      arr.SortRange(0, n);
      for (Position i = 1; i < n; ++i) {
        ASSERT_LE(arr.ValueAt(i - 1), arr.ValueAt(i));
      }
      for (Position i = 0; i < n; ++i) {
        ASSERT_EQ(col[arr.RowIdAt(i)], arr.ValueAt(i));
      }
    }
  }
}

}  // namespace
}  // namespace adaptidx
