#ifndef ADAPTIDX_DURABILITY_DURABLE_INDEX_H_
#define ADAPTIDX_DURABILITY_DURABLE_INDEX_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/updatable_index.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "storage/column.h"
#include "util/status.h"

namespace adaptidx {

/// \brief Durability configuration of a served index (engine/server
/// surface).
struct DurabilityOptions {
  /// Directory holding the WAL segments and checkpoint images. Empty
  /// disables durability entirely (the default: volatile index, no WAL).
  std::string data_dir;
  /// When acknowledged commits reach disk (see FsyncPolicy).
  FsyncPolicy fsync_policy = FsyncPolicy::kGroup;
  /// Auto-checkpoint every this many committed updates (0 = only explicit
  /// Checkpoint() calls). Checked by a background thread, so the trigger
  /// is approximate.
  uint64_t checkpoint_interval = 0;
};

/// \brief An `UpdatableIndex` made restartable: recovery on open, a
/// group-commit WAL bound to every commit, and consistent checkpoints of
/// base + differential + cracked state taken beside live traffic.
///
/// Checkpoint protocol (`Checkpoint()`):
///  1. Rotate the WAL — every sealed segment's records are then <= the
///     epoch about to be captured, making them disposable afterwards.
///  2. Pin a snapshot: one consistent epoch E of the differential stores
///     (and the row-id sequence), with the base column held stable by the
///     pin. Commits keep flowing; they carry LSN > E and stay in the
///     current segment.
///  3. Export the cracked state under piece read latches (queries keep
///     cracking other pieces meanwhile) and serialize everything.
///  4. Release the pin, atomically install `checkpoint-<E>.ckpt`, prune
///     older images (the runner-up is kept as a corruption fallback), and
///     delete WAL segments wholly covered by E.
///
/// Thread-safety: `index()` is the fully concurrent engine object;
/// `Checkpoint()` may be called from any thread (concurrent calls
/// serialize); stats getters are safe anytime.
class DurableIndex {
 public:
  /// \brief Recovers from `opts.data_dir` (or seeds a fresh directory with
  /// `seed`), opens the WAL at the recovered LSN, binds it to the index,
  /// and starts the auto-checkpoint thread when an interval is set.
  static Status Open(const Column& seed, const IndexConfig& config,
                     const DurabilityOptions& opts, LockManager* lock_manager,
                     const std::string& lock_resource,
                     std::unique_ptr<DurableIndex>* out);

  /// \brief Stops the checkpoint thread, unbinds, and syncs the WAL.
  ~DurableIndex();

  /// \brief The recovered, WAL-bound index. Serve all traffic through it.
  UpdatableIndex* index() { return index_.get(); }

  /// \brief Takes one checkpoint now (see the class protocol). Returns the
  /// captured epoch via `epoch_out` (optional).
  Status Checkpoint(uint64_t* epoch_out = nullptr);

  /// \brief What recovery did at open time.
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// \brief Live WAL counters.
  WalStats wal_stats() const { return wal_->stats(); }

  /// \brief Highest LSN assigned (wal passthrough).
  uint64_t last_lsn() const { return wal_->last_lsn(); }
  /// \brief Highest LSN known durable (wal passthrough).
  uint64_t durable_lsn() const { return wal_->durable_lsn(); }

  /// \brief Epoch of the newest installed checkpoint (recovery's image
  /// until the first call here).
  uint64_t last_checkpoint_epoch() const;

  /// \brief Checkpoints taken by this process (explicit + automatic).
  uint64_t checkpoints_taken() const;

 private:
  DurableIndex(DurabilityOptions opts, std::string column_name);

  /// Auto-checkpoint thread: polls the LSN lag against the interval.
  void CheckpointLoop();

  const DurabilityOptions opts_;
  const std::string column_name_;
  RecoveryStats recovery_stats_;

  // Destruction order matters: index_ (declared later) dies first, so no
  // commit can reach the WAL after it is gone.
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<UpdatableIndex> index_;

  mutable std::mutex ckpt_mu_;  ///< serializes Checkpoint() bodies
  mutable std::mutex state_mu_;  ///< guards the two counters below
  std::condition_variable stop_cv_;
  uint64_t last_checkpoint_epoch_ = 0;
  uint64_t checkpoints_taken_ = 0;
  bool stop_ = false;
  std::thread checkpointer_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_DURABILITY_DURABLE_INDEX_H_
