#ifndef ADAPTIDX_CORE_SNAPSHOT_H_
#define ADAPTIDX_CORE_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/types.h"

namespace adaptidx {

/// \brief One immutable, epoch-stamped flat copy of the differential side
/// stores of an `UpdatableIndex` (pending inserts + anti-matter) — the
/// consolidated representation behind snapshot reads.
///
/// The paper's Section 4.2/4.3 design treats adaptive merging's
/// differential files as the natural place for multi-version concurrency:
/// the base column is immutable between checkpoints, so versioning the
/// *differentials* versions the whole logical column. A flat version is
/// materialized by consolidation (delta-chain mode), per commit
/// (copy-chain mode), by checkpoints, and by on-demand captures; it is
/// never mutated after publication.
///
/// Thread-safety: immutable after construction; any number of threads may
/// read one version concurrently without synchronization.
struct SideStoreVersion {
  /// The commit epoch this version materializes: the state after the
  /// `epoch`-th committed update (epoch 0 = pristine base).
  uint64_t epoch = 0;
  /// The next row id the index would assign at this epoch. Checkpoints
  /// persist it so recovery resumes the id sequence exactly where the
  /// captured state left off (replayed WAL inserts must reproduce the row
  /// ids the original run acknowledged).
  RowId next_row_id = 0;
  /// Pending insertions, sorted by (value, rowID).
  std::vector<std::pair<Value, RowId>> inserts;
  /// Anti-matter (deletion markers against base rows), sorted by
  /// (value, rowID).
  std::vector<std::pair<Value, RowId>> anti_matter;

  /// \brief Count and sum of pending inserts falling in [range.lo,
  /// range.hi).
  void InsertCountSum(const ValueRange& range, uint64_t* count,
                      int64_t* sum) const;

  /// \brief Count and sum of anti-matter markers falling in [range.lo,
  /// range.hi).
  void AntiMatterCountSum(const ValueRange& range, uint64_t* count,
                          int64_t* sum) const;

  /// \brief Whether base row (`v`, `id`) is hidden by an anti-matter
  /// marker in this version.
  bool HidesRow(Value v, RowId id) const;

  /// \brief Index of the first pending insert with value >= `lo`
  /// (for in-range iteration: advance while `inserts[i].first < hi`).
  size_t FirstInsertAtOrAbove(Value lo) const;

  /// \brief True when at least one anti-matter marker falls in the range —
  /// the predicate that decides whether a min/max answer from the base
  /// index can be trusted.
  bool AnyAntiMatterIn(const ValueRange& range) const;
};

/// \brief One committed update published in O(1): the op, its (value,
/// rowID) payload, and the epoch it committed at, linked onto the previous
/// delta of the same consolidation era (`prev` is null for the first delta
/// after a consolidated base).
///
/// This is what makes MVCC publication cost independent of the pending
/// side-store size: instead of copying both side stores per commit
/// (O(pending) inside the writer latch), the writer allocates one node.
/// Readers fold the era-local chain suffix over the consolidated base;
/// consolidation bounds the suffix length.
///
/// Thread-safety: immutable after publication; destruction unlinks the
/// chain iteratively so releasing the last reference to a long chain never
/// recurses one stack frame per node.
struct SideStoreDelta {
  /// What the commit did to the differential side stores.
  enum class Op : uint8_t {
    kInsert,        ///< added (value, rowID) to the pending inserts
    kAntiMatter,    ///< planted a deletion marker against a base row
    kCancelInsert,  ///< removed a still-pending insert (delete of it)
  };

  /// \brief Builds one delta node; `prev` links the era-local chain.
  SideStoreDelta(Op op_in, Value value_in, RowId row_id_in, uint64_t epoch_in,
                 RowId next_row_id_in,
                 std::shared_ptr<const SideStoreDelta> prev_in)
      : op(op_in),
        value(value_in),
        row_id(row_id_in),
        epoch(epoch_in),
        next_row_id(next_row_id_in),
        prev(std::move(prev_in)) {}

  /// \brief Iteratively unlinks solely-owned predecessors so dropping a
  /// long chain cannot overflow the stack with recursive destructors.
  ~SideStoreDelta();

  Op op;               ///< \brief The committed operation.
  Value value;         ///< \brief Operand value.
  RowId row_id;        ///< \brief Operand row id.
  uint64_t epoch;      ///< \brief Commit epoch of this delta.
  RowId next_row_id;   ///< \brief Next row id the index assigns after it.
  /// Older delta of the same era; null at the era boundary (the
  /// consolidated base covers everything before). Mutable only so the
  /// destructor can unlink it iteratively.
  mutable std::shared_ptr<const SideStoreDelta> prev;
};

class SnapshotManager;

/// \brief A pinned, consistent view of an `UpdatableIndex` at one commit
/// epoch and base generation — the read end of the MVCC layer.
///
/// A snapshot is captured in O(1) (a short pin on the manager, no
/// side-table latch) and holds exactly the differential state of its
/// `epoch()`: a consolidated base `version()` plus the era-local
/// `delta_head()` chain suffix committed after that base (empty in
/// copy-chain mode and right after consolidation). Updates committed after
/// capture are invisible, so re-running a query against the same snapshot
/// always returns the identical answer (repeatable read). The base
/// column/index referenced by `base_generation()` is guaranteed stable
/// while the snapshot is held: `UpdatableIndex::Checkpoint()` drains
/// (waits for) every outstanding snapshot before swapping the base.
///
/// Because checkpoints — and the index destructor — wait on outstanding
/// snapshots, a thread must never call `Checkpoint()` on, or destroy, the
/// index while itself holding one of its snapshots (self-deadlock).
/// Release (destroy) snapshots promptly; a pin held by another thread
/// simply blocks the checkpoint/destruction until released, it never
/// dangles.
///
/// Thread-safety: a Snapshot is a move-only value owned by one thread;
/// concurrent snapshots of the same index are independent and may be
/// captured/read/released from any number of threads. Concurrent *reads*
/// of one pinned Snapshot (as a scope shares it across queries) are safe —
/// all accessors are const over immutable state.
class Snapshot {
 public:
  /// \brief An empty (invalid) snapshot; pins nothing.
  Snapshot() = default;

  /// \brief Releases the pin (unblocking a draining checkpoint and making
  /// retired versions reclaimable).
  ~Snapshot() { Release(); }

  Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }
  /// \brief Move-assigns, releasing any pin this snapshot held.
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// \brief False for default-constructed or released snapshots.
  bool valid() const { return version_ != nullptr; }

  /// \brief The commit epoch this snapshot reads at (base epoch plus every
  /// chained delta).
  uint64_t epoch() const { return epoch_; }

  /// \brief The base-column generation (bumped by every checkpoint) this
  /// snapshot's rowIDs and base answers are expressed against.
  uint64_t base_generation() const { return base_generation_; }

  /// \brief The pinned consolidated base state. Requires `valid()`. In
  /// delta-chain mode this covers epochs up to `version().epoch` only; the
  /// deltas of (`version().epoch`, `epoch()`] hang off `delta_head()`.
  const SideStoreVersion& version() const { return *version_; }

  /// \brief Newest delta this snapshot observes; null when the snapshot is
  /// exactly a consolidated state. Walking `prev` to null yields the
  /// era-local suffix to fold over `version()`.
  const SideStoreDelta* delta_head() const { return head_.get(); }

  /// \brief Number of deltas between `version()` and this snapshot — the
  /// fold work a reader pays (bounded by the consolidation threshold).
  size_t chain_length() const { return chain_length_; }

  /// \brief Next row id the index would assign at `epoch()`.
  RowId next_row_id() const { return next_row_id_; }

  /// \brief Materializes the full differential state at `epoch()` as one
  /// flat sorted version (base plus folded chain suffix) — the checkpoint
  /// image path, which needs the complete state, not the incremental view.
  /// O(base + chain·log). Requires `valid()`.
  SideStoreVersion Materialize() const;

  /// \brief Explicitly drops the pin early (idempotent).
  void Release();

 private:
  friend class SnapshotManager;
  friend class UpdatableIndex;  ///< validates snapshot/index pairing

  Snapshot(SnapshotManager* mgr,
           std::shared_ptr<const SideStoreVersion> version,
           std::shared_ptr<const SideStoreDelta> head, size_t chain_length,
           uint64_t epoch, RowId next_row_id, uint64_t base_generation)
      : mgr_(mgr),
        version_(std::move(version)),
        head_(std::move(head)),
        chain_length_(chain_length),
        epoch_(epoch),
        next_row_id_(next_row_id),
        base_generation_(base_generation) {}

  SnapshotManager* mgr_ = nullptr;
  std::shared_ptr<const SideStoreVersion> version_;
  std::shared_ptr<const SideStoreDelta> head_;
  size_t chain_length_ = 0;
  uint64_t epoch_ = 0;
  RowId next_row_id_ = 0;
  uint64_t base_generation_ = 0;
};

/// \brief Publishes, pins, drains, and reclaims versions — the
/// version-chain bookkeeping of the MVCC layer.
///
/// Writer protocol: after mutating the side stores under the index's
/// exclusive latch, the writer publishes the commit either as one O(1)
/// delta node (`PublishDelta`, delta-chain mode) or as a full flat copy
/// (`Publish`, copy-chain mode). In delta mode a periodic `Consolidate`
/// installs a flat base and resets the chain so readers never fold an
/// unbounded suffix. Reader protocol: `Acquire` pins the current (base,
/// chain head) pair under a short internal mutex — the "short pin" — and
/// the returned `Snapshot` releases it on destruction. Checkpoint
/// protocol: `BeginRebase` blocks new acquisitions and waits until every
/// outstanding snapshot is released, the caller swaps the base, then
/// `CompleteRebase` installs the post-checkpoint version under the next
/// base generation and re-admits readers.
///
/// Reclamation is epoch-based through the pins themselves: every snapshot
/// holds shared ownership of its base and chain head, so superseding a
/// base (consolidation) or dropping the chain frees exactly the suffix no
/// pin can observe anymore — a delta node dies the moment the last
/// snapshot that could see it releases. Copy-chain mode additionally
/// tracks superseded flat versions in a retired list pruned as pins drain
/// (`versions_retired`/`versions_reclaimed`). Chain destruction is
/// iterative (see `SideStoreDelta::~SideStoreDelta`), never one stack
/// frame per node.
///
/// Thread-safety: fully synchronized internally; all methods may be called
/// from any thread. `BeginRebase`/`CompleteRebase` must be paired and are
/// mutually exclusive with each other (the index's exclusive latch
/// provides that).
class SnapshotManager {
 public:
  SnapshotManager();

  /// \brief Copy-chain commit publication: installs `version` as current
  /// (its epoch must be monotonically increasing); the previous current
  /// version is retired and reclamation runs. Must not be mixed with a
  /// live delta chain.
  void Publish(std::shared_ptr<const SideStoreVersion> version);

  /// \brief Delta-chain commit publication, O(1): links one delta node for
  /// (`op`, `v`, `row_id`) committed at `epoch` onto the current chain.
  /// Returns the resulting chain length so the caller can trigger
  /// consolidation.
  size_t PublishDelta(SideStoreDelta::Op op, Value v, RowId row_id,
                      uint64_t epoch, RowId next_row_id);

  /// \brief Installs `version` (the flat materialization of the current
  /// state, same epoch) as the new consolidated base and resets the delta
  /// chain. Pinned snapshots keep their suffix alive through their own
  /// references; unpinned deltas are freed here.
  void Consolidate(std::shared_ptr<const SideStoreVersion> version);

  /// \brief Pins the current version (base + chain head). Blocks while a
  /// rebase (checkpoint drain) is in progress.
  Snapshot Acquire();

  /// \brief Pins an externally materialized version (the capture path of an
  /// index that does not maintain the chain, see
  /// `IndexConfig::snapshot_reads`) — the version joins the active registry
  /// so checkpoint drains account for it. Returns an *invalid* snapshot
  /// instead of blocking when a rebase is in progress: the caller typically
  /// holds the index latch while materializing, and waiting under it would
  /// deadlock against the rebase. Drop the latch, `AwaitRebaseComplete`,
  /// re-materialize, retry.
  Snapshot TryAcquireMaterialized(
      std::shared_ptr<const SideStoreVersion> version);

  /// \brief Blocks while a rebase is in progress. Must be called WITHOUT
  /// holding any latch the rebasing thread needs.
  void AwaitRebaseComplete();

  /// \brief Checkpoint entry: serializes against other rebases, blocks new
  /// acquisitions, then waits until no snapshot is active. Must be called
  /// WITHOUT holding the index latch — snapshot holders may need it to
  /// finish the read their pin protects (see `UpdatableIndex::Checkpoint`
  /// for the ordering).
  void BeginRebase();

  /// \brief Checkpoint exit: installs the post-checkpoint `version`, bumps
  /// the base generation, drops the (now meaningless) retired chain and
  /// delta chain, and re-admits readers.
  void CompleteRebase(std::shared_ptr<const SideStoreVersion> version);

  /// \brief Generation of the base column current snapshots read against;
  /// bumped by every `CompleteRebase`.
  uint64_t base_generation() const;

  /// \brief Epoch of the currently published state (base epoch plus every
  /// chained delta).
  uint64_t current_epoch() const;

  /// \brief Number of snapshots currently pinned.
  size_t active_snapshots() const;

  /// \brief Oldest epoch pinned by an active snapshot; `current_epoch()`
  /// when none is active.
  uint64_t oldest_active_epoch() const;

  // ---- reclamation observability (tests/benchmarks) --------------------

  uint64_t versions_published() const;  ///< flat installs (`Publish`/`Consolidate`/`CompleteRebase`)
  uint64_t versions_retired() const;    ///< copy-chain versions superseded while current
  uint64_t versions_reclaimed() const;  ///< retired versions dropped again
  size_t retired_chain_length() const;  ///< retired versions still held
  uint64_t deltas_published() const;    ///< O(1) delta-node publications
  uint64_t consolidations() const;      ///< chain → flat-base materializations
  size_t chain_length() const;          ///< deltas currently chained on the base

 private:
  friend class Snapshot;

  /// Unpins one snapshot at `epoch`; runs reclamation and wakes a draining
  /// rebase when the registry empties.
  void Release(uint64_t epoch);

  /// Drops every retired version whose epoch no active snapshot pins.
  /// Requires mu_ held.
  void ReclaimLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< drain progress + rebase completion
  bool rebasing_ = false;
  std::shared_ptr<const SideStoreVersion> current_;
  std::shared_ptr<const SideStoreDelta> head_;  ///< newest delta, null if none
  size_t chain_length_ = 0;
  uint64_t current_epoch_ = 0;
  RowId current_next_row_id_ = 0;
  uint64_t base_generation_ = 0;
  /// Pin counts per epoch of every active snapshot.
  std::map<uint64_t, size_t> active_;
  /// Superseded copy-chain versions whose epoch is still pinned, oldest
  /// first.
  std::deque<std::shared_ptr<const SideStoreVersion>> retired_;
  uint64_t published_ = 0;
  uint64_t retired_total_ = 0;
  uint64_t reclaimed_ = 0;
  uint64_t deltas_published_ = 0;
  uint64_t consolidations_ = 0;
};

/// \brief A transactional read scope: the shared registry of snapshot pins
/// behind `Session::BeginSnapshot()`/`EndSnapshot()`, so every query of a
/// multi-query read transaction reads at ONE pinned epoch per index
/// instead of capturing per query.
///
/// The first query an index executes under the scope adopts a freshly
/// captured pin (`Adopt`); every later query on that index finds and
/// reuses it (`Find`). `Close` releases all pins; a query that races the
/// close (an async submission completing after `EndSnapshot`) finds the
/// scope closed, its adoption refused, and falls back to per-query
/// capture — pins can never outlive the scope's owner.
///
/// Thread-safety: fully synchronized; queries of one session may run the
/// scope concurrently from any number of pool threads. Returned pin
/// pointers stay valid until `Close`.
class SnapshotScope {
 public:
  /// \brief The pin this scope holds for `index`; null when no query on
  /// that index ran yet (or the scope is closed).
  const Snapshot* Find(const void* index) const;

  /// \brief Registers a captured pin for `index` and returns the scope's
  /// pin for it — `snap` itself normally; the already-adopted winner if two
  /// queries raced; null (releasing `snap`) when the scope is closed.
  const Snapshot* Adopt(const void* index, Snapshot snap);

  /// \brief Releases every pin and refuses further adoptions (idempotent).
  void Close();

  /// \brief Number of indexes this scope currently pins.
  size_t pinned() const;

 private:
  mutable std::mutex mu_;
  bool closed_ = false;
  /// node-based map: pin addresses stay stable while entries are added.
  std::map<const void*, Snapshot> pins_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_SNAPSHOT_H_
