#include <gtest/gtest.h>

#include <vector>

#include "cracking/piece_map.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

constexpr Value kLo = 0;
constexpr Value kHi = 1000;

TEST(PieceMapTest, StartsWithSinglePiece) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  EXPECT_EQ(m.num_pieces(), 1u);
  auto p = m.FindByPosition(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->begin, 0u);
  EXPECT_EQ(p->end, 100u);
  EXPECT_EQ(p->lo_value, kLo);
  EXPECT_EQ(p->hi_value, kHi);
  EXPECT_FALSE(p->sorted);
  EXPECT_TRUE(m.Validate());
}

TEST(PieceMapTest, FindByPositionAnywhere) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  EXPECT_EQ(m.FindByPosition(0)->begin, 0u);
  EXPECT_EQ(m.FindByPosition(99)->begin, 0u);
}

TEST(PieceMapTest, InteriorSplit) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  auto p = m.FindByPosition(0);
  auto right = m.Split(p, 40, 500);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(m.num_pieces(), 2u);
  EXPECT_EQ(p->begin, 0u);
  EXPECT_EQ(p->end, 40u);
  EXPECT_EQ(p->hi_value, 500);
  EXPECT_EQ(right->begin, 40u);
  EXPECT_EQ(right->end, 100u);
  EXPECT_EQ(right->lo_value, 500);
  EXPECT_EQ(right->hi_value, kHi);
  EXPECT_TRUE(m.Validate());
}

TEST(PieceMapTest, SplitAtBeginAdjustsBounds) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  auto p = m.FindByPosition(0);
  m.Split(p, 40, 500);
  auto right = m.FindByPosition(40);
  // A crack landing exactly at a piece begin raises that piece's lo and
  // lowers the predecessor's hi.
  auto res = m.Split(right, 40, 600);
  EXPECT_EQ(res.get(), right.get());
  EXPECT_EQ(m.num_pieces(), 2u);
  EXPECT_EQ(right->lo_value, 600);
  EXPECT_EQ(m.FindByPosition(0)->hi_value, 500);  // prev hi unchanged (500<600)
  EXPECT_TRUE(m.Validate());
}

TEST(PieceMapTest, SplitAtBeginTightensPredecessor) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  auto p = m.FindByPosition(0);
  m.Split(p, 40, 500);
  auto right = m.FindByPosition(40);
  // Crack at the boundary with a smaller pivot than the existing one: the
  // predecessor's upper bound tightens down to it.
  m.Split(right, 40, 450);
  EXPECT_EQ(m.FindByPosition(0)->hi_value, 450);
  EXPECT_EQ(right->lo_value, 500);  // max(500, 450) stays
  EXPECT_TRUE(m.Validate());
}

TEST(PieceMapTest, SplitAtEndAdjustsBounds) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  auto p = m.FindByPosition(0);
  m.Split(p, 40, 500);
  // Crack at p's end with pivot below current hi tightens p and raises the
  // successor's lo.
  auto suc = m.Split(p, 40, 480);
  ASSERT_NE(suc, nullptr);
  EXPECT_EQ(suc->begin, 40u);
  EXPECT_EQ(p->hi_value, 480);
  EXPECT_EQ(suc->lo_value, 500);  // already tighter
  EXPECT_TRUE(m.Validate());
}

TEST(PieceMapTest, SplitAtArrayEndReturnsNull) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  auto p = m.FindByPosition(0);
  auto res = m.Split(p, 100, 999);
  EXPECT_EQ(res, nullptr);
  EXPECT_EQ(p->hi_value, 999);
  EXPECT_EQ(m.num_pieces(), 1u);
  EXPECT_TRUE(m.Validate());
}

TEST(PieceMapTest, NextPieceWalk) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  auto p = m.FindByPosition(0);
  m.Split(p, 30, 300);
  auto second = m.FindByPosition(30);
  m.Split(second, 60, 600);

  auto first = m.FindByPosition(0);
  auto walk1 = m.NextPiece(*first);
  ASSERT_NE(walk1, nullptr);
  EXPECT_EQ(walk1->begin, 30u);
  auto walk2 = m.NextPiece(*walk1);
  ASSERT_NE(walk2, nullptr);
  EXPECT_EQ(walk2->begin, 60u);
  EXPECT_EQ(m.NextPiece(*walk2), nullptr);
}

TEST(PieceMapTest, SortedFlagInheritedOnSplit) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  auto p = m.FindByPosition(0);
  p->sorted = true;
  auto right = m.Split(p, 50, 500);
  EXPECT_TRUE(right->sorted);
}

TEST(PieceMapTest, PolicyPropagatesToNewPieces) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kMiddleOut);
  auto p = m.FindByPosition(0);
  auto right = m.Split(p, 50, 500);
  EXPECT_EQ(right->latch.policy(), SchedulingPolicy::kMiddleOut);
}

TEST(PieceMapTest, ForEachVisitsInPositionOrder) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  auto p = m.FindByPosition(0);
  m.Split(p, 30, 300);
  m.Split(m.FindByPosition(30), 70, 700);
  std::vector<Position> begins;
  m.ForEach([&begins](const Piece& piece) { begins.push_back(piece.begin); });
  EXPECT_EQ(begins, (std::vector<Position>{0, 30, 70}));
}

TEST(PieceMapTest, ManyRandomSplitsKeepTiling) {
  const size_t n = 10000;
  PieceMap m(n, 0, static_cast<Value>(n), SchedulingPolicy::kFifo);
  Rng rng(99);
  // Apply random cracks with positions proportional to pivots (as they
  // would be for a uniform permutation).
  for (int i = 0; i < 500; ++i) {
    const Value pivot = rng.UniformRange(1, static_cast<Value>(n));
    const Position pos = static_cast<Position>(pivot);
    auto piece = m.FindByPosition(pos < n ? pos : n - 1);
    if (pos >= piece->begin && pos <= piece->end &&
        pivot > piece->lo_value && pivot < piece->hi_value) {
      m.Split(piece, pos, pivot);
    }
  }
  EXPECT_TRUE(m.Validate());
  // Pieces tile [0, n): sum of sizes equals n.
  size_t total = 0;
  m.ForEach([&total](const Piece& p) { total += p.size(); });
  EXPECT_EQ(total, n);
}

TEST(PieceMapTest, SizeAccessor) {
  PieceMap m(100, kLo, kHi, SchedulingPolicy::kFifo);
  EXPECT_EQ(m.array_size(), 100u);
  auto p = m.FindByPosition(0);
  EXPECT_EQ(p->size(), 100u);
  m.Split(p, 25, 250);
  EXPECT_EQ(p->size(), 25u);
}

}  // namespace
}  // namespace adaptidx
