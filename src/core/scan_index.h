#ifndef ADAPTIDX_CORE_SCAN_INDEX_H_
#define ADAPTIDX_CORE_SCAN_INDEX_H_

#include <string>

#include "core/adaptive_index.h"
#include "storage/column.h"

namespace adaptidx {

/// \brief Baseline access method: every query performs a full column scan
/// ("the system accesses the data using plain scans, with no indexing
/// mechanism present", Section 6.1).
///
/// Purely read-only, so it needs no concurrency control of its own — the
/// property the paper contrasts adaptive indexing against.
class ScanIndex : public AdaptiveIndex {
 public:
  explicit ScanIndex(const Column* column) : column_(column) {}

  std::string Name() const override { return "scan"; }

 protected:
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  const Column* column_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_SCAN_INDEX_H_
