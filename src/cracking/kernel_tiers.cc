#include "cracking/kernel_tiers.h"

namespace adaptidx {

namespace {

KernelTier DetectBestTier() {
#ifdef ADAPTIDX_X86_SIMD
  __builtin_cpu_init();
  // avx512f covers the compress instructions (vpcompressq/vpcompressd) the
  // crack kernel uses on zmm registers.
  if (__builtin_cpu_supports("avx512f")) return KernelTier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return KernelTier::kAvx2;
#endif
  return KernelTier::kBranchless;
}

}  // namespace

KernelTier BestKernelTier() {
  static const KernelTier best = DetectBestTier();
  return best;
}

bool KernelTierSupported(KernelTier tier) {
  switch (tier) {
    case KernelTier::kReference:
    case KernelTier::kBranchless:
    case KernelTier::kAuto:
      return true;
    case KernelTier::kAvx2:
      return BestKernelTier() == KernelTier::kAvx2 ||
             BestKernelTier() == KernelTier::kAvx512;
    case KernelTier::kAvx512:
      return BestKernelTier() == KernelTier::kAvx512;
  }
  return false;
}

KernelTier ResolveKernelTier(KernelTier tier) {
  if (tier == KernelTier::kAuto) return BestKernelTier();
  if (!KernelTierSupported(tier)) return BestKernelTier();
  return tier;
}

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kReference:
      return "reference";
    case KernelTier::kBranchless:
      return "branchless";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
    case KernelTier::kAuto:
      return "auto";
  }
  return "unknown";
}

}  // namespace adaptidx
