#include "server/protocol.h"

namespace adaptidx {
namespace server {

namespace {

bool KnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kOpenSession:
    case FrameType::kQuery:
    case FrameType::kBatch:
    case FrameType::kInsert:
    case FrameType::kDelete:
    case FrameType::kStats:
    case FrameType::kClose:
    case FrameType::kCheckpoint:
    case FrameType::kOpenOk:
    case FrameType::kResult:
    case FrameType::kBatchResult:
    case FrameType::kStatsResult:
    case FrameType::kServerBusy:
    case FrameType::kCloseOk:
    case FrameType::kError:
      return true;
  }
  return false;
}

bool WireServableKind(uint8_t k) {
  switch (static_cast<QueryKind>(k)) {
    case QueryKind::kCount:
    case QueryKind::kSum:
    case QueryKind::kRowIds:
    case QueryKind::kMinMax:
      return true;
    case QueryKind::kSumOther:  // single served column: not expressible
      return false;
  }
  return false;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

}  // namespace

std::string EncodeFrame(FrameType type, uint64_t request_id,
                        const std::string& payload) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(kFrameOverhead + payload.size()));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(request_id);
  std::string out = w.Take();
  out.append(payload);
  return out;
}

Status TryDecodeFrame(const uint8_t* data, size_t size,
                      size_t max_frame_bytes, Frame* out, size_t* consumed) {
  *consumed = 0;
  if (size < kFrameLengthBytes) return Status::OK();  // need more bytes
  WireReader header(data, size);
  uint32_t length = 0;
  header.GetU32(&length);
  // The two rejections that make hostile lengths harmless: a length that
  // cannot even hold the fixed overhead, and one above the cap — both
  // decided before any payload buffer is reserved.
  if (length < kFrameOverhead) {
    return Status::Corruption("frame length below fixed overhead");
  }
  if (length > max_frame_bytes) {
    return Status::Corruption("frame length exceeds cap");
  }
  if (size < kFrameLengthBytes + length) return Status::OK();  // need more
  uint8_t type = 0;
  uint64_t request_id = 0;
  header.GetU8(&type);
  header.GetU64(&request_id);
  if (!header.ok()) return Status::Corruption("truncated frame header");
  if (!KnownFrameType(type)) {
    return Status::Corruption("unknown frame type");
  }
  out->type = static_cast<FrameType>(type);
  out->request_id = request_id;
  out->payload.assign(
      reinterpret_cast<const char*>(data + kFrameLengthBytes + kFrameOverhead),
      length - kFrameOverhead);
  *consumed = kFrameLengthBytes + length;
  return Status::OK();
}

// ---------------------------------------------------------- OpenSessionReq

std::string OpenSessionReq::Encode() const {
  WireWriter w;
  w.PutU8(flags);
  w.PutU32(client_id);
  return w.Take();
}

Status OpenSessionReq::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  if (!r.GetU8(&flags) || !r.GetU32(&client_id) || !r.Exhausted()) {
    return Malformed("OPEN_SESSION");
  }
  return Status::OK();
}

std::string OpenOkMsg::Encode() const {
  WireWriter w;
  w.PutU32(session_id);
  return w.Take();
}

Status OpenOkMsg::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  if (!r.GetU32(&session_id) || !r.Exhausted()) return Malformed("OPEN_OK");
  return Status::OK();
}

// ---------------------------------------------------------------- QueryReq

void QueryReq::EncodeTo(WireWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutI64(lo);
  w->PutI64(hi);
}

bool QueryReq::DecodeFrom(WireReader* r) {
  uint8_t k = 0;
  if (!r->GetU8(&k) || !r->GetI64(&lo) || !r->GetI64(&hi)) return false;
  if (!WireServableKind(k)) return false;
  kind = static_cast<QueryKind>(k);
  return true;
}

std::string QueryReq::Encode() const {
  WireWriter w;
  EncodeTo(&w);
  return w.Take();
}

Status QueryReq::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  if (!DecodeFrom(&r) || !r.Exhausted()) return Malformed("QUERY");
  return Status::OK();
}

Query QueryReq::ToQuery() const {
  Query q;
  q.kind = kind;
  q.range = ValueRange{lo, hi};
  return q;
}

// ---------------------------------------------------------------- BatchReq

std::string BatchReq::Encode() const {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(queries.size()));
  for (const auto& q : queries) q.EncodeTo(&w);
  return w.Take();
}

Status BatchReq::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  uint32_t n = 0;
  if (!r.GetU32(&n)) return Malformed("BATCH");
  // 17 bytes per element (kind + lo + hi): a count the remaining payload
  // cannot physically hold is rejected before the vector reserves.
  if (static_cast<size_t>(n) * 17 != r.remaining()) return Malformed("BATCH");
  queries.clear();
  queries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    QueryReq q;
    if (!q.DecodeFrom(&r)) return Malformed("BATCH");
    queries.push_back(q);
  }
  if (!r.Exhausted()) return Malformed("BATCH");
  return Status::OK();
}

// ------------------------------------------------------- Insert/DeleteReq

std::string InsertReq::Encode() const {
  WireWriter w;
  w.PutI64(value);
  return w.Take();
}

Status InsertReq::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  if (!r.GetI64(&value) || !r.Exhausted()) return Malformed("INSERT");
  return Status::OK();
}

std::string DeleteReq::Encode() const {
  WireWriter w;
  w.PutI64(value);
  w.PutU32(row_id);
  return w.Take();
}

Status DeleteReq::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  uint32_t id = 0;
  if (!r.GetI64(&value) || !r.GetU32(&id) || !r.Exhausted()) {
    return Malformed("DELETE");
  }
  row_id = static_cast<RowId>(id);
  return Status::OK();
}

// --------------------------------------------------------------- ResultMsg

void ResultMsg::EncodeTo(WireWriter* w) const {
  w->PutU8(status_code);
  w->PutString(message);
  w->PutU8(kind);
  w->PutU64(count);
  w->PutI64(sum);
  w->PutU8(has_minmax);
  w->PutI64(min_value);
  w->PutI64(max_value);
  w->PutU32(row_id);
  w->PutU32(static_cast<uint32_t>(row_ids.size()));
  for (uint32_t id : row_ids) w->PutU32(id);
}

bool ResultMsg::DecodeFrom(WireReader* r) {
  uint32_t rid = 0;
  uint32_t n_ids = 0;
  if (!r->GetU8(&status_code) || !r->GetString(&message) || !r->GetU8(&kind) ||
      !r->GetU64(&count) || !r->GetI64(&sum) || !r->GetU8(&has_minmax) ||
      !r->GetI64(&min_value) || !r->GetI64(&max_value) || !r->GetU32(&rid) ||
      !r->GetU32(&n_ids)) {
    return false;
  }
  row_id = rid;
  // Guard the reserve: a forged id count larger than the payload could
  // physically carry is rejected before allocation.
  if (static_cast<size_t>(n_ids) * 4 > r->remaining()) return false;
  row_ids.clear();
  row_ids.reserve(n_ids);
  for (uint32_t i = 0; i < n_ids; ++i) {
    uint32_t id = 0;
    if (!r->GetU32(&id)) return false;
    row_ids.push_back(id);
  }
  return true;
}

std::string ResultMsg::Encode() const {
  WireWriter w;
  EncodeTo(&w);
  return w.Take();
}

Status ResultMsg::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  if (!DecodeFrom(&r) || !r.Exhausted()) return Malformed("RESULT");
  return Status::OK();
}

Status ResultMsg::ToStatus() const {
  return WireToStatus(status_code, message);
}

ResultMsg ResultMsg::FromStatus(const Status& s) {
  ResultMsg m;
  m.status_code = StatusCodeToWire(s);
  m.message = s.message();
  return m;
}

ResultMsg ResultMsg::FromResult(const QueryResult& r) {
  ResultMsg m;
  m.kind = static_cast<uint8_t>(r.kind);
  m.count = r.count;
  m.sum = r.sum;
  m.has_minmax = r.has_minmax ? 1 : 0;
  m.min_value = r.min_value;
  m.max_value = r.max_value;
  m.row_ids.assign(r.row_ids.begin(), r.row_ids.end());
  return m;
}

std::string BatchResultMsg::Encode() const {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(results.size()));
  for (const auto& m : results) m.EncodeTo(&w);
  return w.Take();
}

Status BatchResultMsg::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  uint32_t n = 0;
  if (!r.GetU32(&n)) return Malformed("BATCH_RESULT");
  // Minimum 40 bytes per element; forged counts fail before the reserve.
  if (static_cast<size_t>(n) * 40 > r.remaining()) {
    return Malformed("BATCH_RESULT");
  }
  results.clear();
  results.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ResultMsg m;
    if (!m.DecodeFrom(&r)) return Malformed("BATCH_RESULT");
    results.push_back(std::move(m));
  }
  if (!r.Exhausted()) return Malformed("BATCH_RESULT");
  return Status::OK();
}

// ----------------------------------------------------------------- StatsMsg

bool StatsMsg::Find(const std::string& key, uint64_t* value) const {
  for (const auto& kv : entries) {
    if (kv.first == key) {
      *value = kv.second;
      return true;
    }
  }
  return false;
}

std::string StatsMsg::Encode() const {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& kv : entries) {
    w.PutString(kv.first);
    w.PutU64(kv.second);
  }
  return w.Take();
}

Status StatsMsg::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  uint32_t n = 0;
  if (!r.GetU32(&n)) return Malformed("STATS_RESULT");
  // Minimum 12 bytes per entry (empty key + value).
  if (static_cast<size_t>(n) * 12 > r.remaining()) {
    return Malformed("STATS_RESULT");
  }
  entries.clear();
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string key;
    uint64_t value = 0;
    if (!r.GetString(&key) || !r.GetU64(&value)) {
      return Malformed("STATS_RESULT");
    }
    entries.emplace_back(std::move(key), value);
  }
  if (!r.Exhausted()) return Malformed("STATS_RESULT");
  return Status::OK();
}

// ------------------------------------------------------------------ BusyMsg

std::string BusyMsg::Encode() const {
  WireWriter w;
  w.PutU8(overload_state);
  w.PutU64(shed_total);
  return w.Take();
}

Status BusyMsg::Decode(const std::string& payload) {
  WireReader r(payload.data(), payload.size());
  if (!r.GetU8(&overload_state) || !r.GetU64(&shed_total) || !r.Exhausted()) {
    return Malformed("SERVER_BUSY");
  }
  return Status::OK();
}

// ----------------------------------------------------------- status bridge

uint8_t StatusCodeToWire(const Status& s) {
  return static_cast<uint8_t>(s.code());
}

Status WireToStatus(uint8_t code, const std::string& message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kBusy:
      return Status::Busy(message);
    case Status::Code::kConflict:
      return Status::Conflict(message);
    case Status::Code::kAborted:
      return Status::Aborted(message);
    case Status::Code::kTimedOut:
      return Status::TimedOut(message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(message);
    case Status::Code::kCorruption:
      return Status::Corruption(message);
  }
  return Status::Corruption("unknown wire status code");
}

}  // namespace server
}  // namespace adaptidx
