#ifndef ADAPTIDX_CORE_COMMIT_SINK_H_
#define ADAPTIDX_CORE_COMMIT_SINK_H_

#include <cstdint>

#include "storage/types.h"
#include "util/status.h"

namespace adaptidx {

/// \brief The hook through which `UpdatableIndex` hands every committed
/// update to a durability layer, without the core depending on it.
///
/// The contract is write-ahead in the strict sense: the index calls
/// `LogCommit` *inside* its commit critical section, immediately before it
/// advances the commit epoch — so log sequence numbers are assigned in
/// exactly the order updates become visible, and LSN k corresponds to
/// commit epoch advance k. A sink implementation must therefore make
/// `LogCommit` cheap (append to an in-memory buffer and return; no I/O,
/// no blocking on disk) because it runs under the index mutex.
///
/// Durability is purchased *outside* the critical section: after releasing
/// its locks, the index calls `WaitDurable(lsn)` and only then
/// acknowledges the update to the caller. That split is what makes group
/// commit possible — many committers park in `WaitDurable` while one
/// flusher retires them all with a single fsync.
///
/// Thread-safety: both methods are called concurrently from many threads;
/// implementations synchronize internally. `LogCommit` additionally runs
/// under the index's internal mutex, so a sink must never call back into
/// the index from it.
class CommitSink {
 public:
  /// \brief Logical operation tags, stable on disk.
  enum class OpType : uint8_t {
    kInsert = 1,  ///< insert of (value, assigned row id)
    kDelete = 2,  ///< delete of live tuple (value, row id)
    kFold = 3,    ///< side-store fold into a new base (deterministic replay)
  };

  virtual ~CommitSink() = default;

  /// \brief Records one committed operation; returns its LSN. Called under
  /// the index mutex at the commit point — must not block or perform I/O.
  virtual uint64_t LogCommit(OpType type, Value value, RowId row_id) = 0;

  /// \brief Blocks until every record with sequence number <= `lsn` is
  /// durable per the sink's fsync policy. Called outside the index mutex.
  virtual Status WaitDurable(uint64_t lsn) = 0;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_COMMIT_SINK_H_
