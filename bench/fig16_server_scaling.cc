/// \file Server scaling and load-shed behavior (beyond the paper, which
/// stops at the storage engine): QPS and tail latency of the TCP front-end
/// as the connection count grows, then an overload phase driving the
/// admission controller at ~2x capacity.
///
/// Phase 1 — scaling sweep: closed-loop clients (1/4/16/64 connections by
/// default), each issuing `AI_BENCH_QUERIES_PER_CONN` random 0.01%-
/// selectivity COUNT queries over a served cracking index. Per-request
/// latency is measured client-side (full wire round trip); the sweep
/// reports QPS, p50 and p99 per connection count.
///
/// Phase 2 — overload: a deliberately small server (tiny global in-flight
/// cap, one engine thread) fed by more connections than capacity. The
/// acceptance claim is that load shedding works: the excess is refused
/// with SERVER_BUSY (visible in the shed counters) while the requests
/// that WERE admitted keep a bounded p99 — the engine never accumulates a
/// queue that would stretch every admitted request's latency.
///
/// Emits BENCH_server.json (override with AI_BENCH_SERVER_JSON).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

using server::Client;
using server::Server;
using server::ServerOptions;

double PercentileMs(std::vector<int64_t>* latencies_ns, double p) {
  if (latencies_ns->empty()) return 0.0;
  std::sort(latencies_ns->begin(), latencies_ns->end());
  const size_t idx = std::min(
      latencies_ns->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies_ns->size())));
  return static_cast<double>((*latencies_ns)[idx]) / 1e6;
}

struct SweepPoint {
  size_t connections = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// One closed-loop sweep point: `connections` clients, each running
/// `queries_per_conn` COUNT queries back to back.
SweepPoint RunPoint(uint16_t port, size_t connections, size_t queries_per_conn,
                    size_t rows) {
  std::vector<std::vector<int64_t>> lat(connections);
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const int64_t t0 = NowNanos();
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", port).ok() ||
          !client.OpenSession().ok()) {
        ++errors;
        return;
      }
      Rng rng(5000 + c);
      const Value span = std::max<Value>(1, static_cast<Value>(rows / 10000));
      lat[c].reserve(queries_per_conn);
      for (size_t q = 0; q < queries_per_conn; ++q) {
        const Value lo = static_cast<Value>(rng.Next() % rows);
        uint64_t count = 0;
        const int64_t s = NowNanos();
        if (!client.Count(lo, lo + span, &count).ok()) {
          ++errors;
          return;
        }
        lat[c].push_back(NowNanos() - s);
      }
      client.CloseSession();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_secs = static_cast<double>(NowNanos() - t0) / 1e9;
  if (errors.load() != 0) {
    std::fprintf(stderr, "sweep point %zu conns: %zu client errors\n",
                 connections, errors.load());
  }
  std::vector<int64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  SweepPoint point;
  point.connections = connections;
  point.qps = wall_secs > 0.0 ? static_cast<double>(all.size()) / wall_secs
                              : 0.0;
  point.p50_ms = PercentileMs(&all, 0.50);
  point.p99_ms = PercentileMs(&all, 0.99);
  return point;
}

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  const size_t queries_per_conn = EnvSize("AI_BENCH_QUERIES_PER_CONN", 200);
  const size_t max_conns = EnvSize("AI_BENCH_MAX_CONNS", 64);
  PrintHeader("Server scaling: QPS and tail latency vs connection count",
              "rows=" + std::to_string(rows) +
                  " queries/conn=" + std::to_string(queries_per_conn) +
                  " conns=1.." + std::to_string(max_conns));

  // ---- phase 1: scaling sweep -------------------------------------------
  std::vector<SweepPoint> sweep;
  {
    Server server(MakeUniqueRandomColumn(rows));
    if (!server.Start().ok()) {
      std::fprintf(stderr, "server start failed\n");
      std::exit(1);
    }
    for (size_t conns = 1; conns <= max_conns; conns *= 4) {
      SweepPoint p = RunPoint(server.port(), conns, queries_per_conn, rows);
      sweep.push_back(p);
      std::printf("conns=%-3zu qps=%10.1f  p50=%7.3f ms  p99=%7.3f ms\n",
                  p.connections, p.qps, p.p50_ms, p.p99_ms);
    }
    server.Stop();
  }

  // ---- phase 2: overload at ~2x capacity --------------------------------
  const size_t cap = EnvSize("AI_BENCH_OVERLOAD_CAP", 4);
  const size_t overload_conns = EnvSize("AI_BENCH_OVERLOAD_CONNS", 2 * cap);
  const size_t overload_queries =
      EnvSize("AI_BENCH_OVERLOAD_QUERIES", queries_per_conn);
  uint64_t ok_total = 0, busy_total = 0, shed_total = 0;
  double p99_ok_ms = 0.0;
  {
    ServerOptions opts;
    opts.engine_threads = 1;
    opts.admission.global_inflight = cap;
    opts.admission.per_connection_inflight = cap;
    Server server(MakeUniqueRandomColumn(rows), opts);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "overload server start failed\n");
      std::exit(1);
    }
    std::vector<std::vector<int64_t>> lat(overload_conns);
    std::vector<uint64_t> ok(overload_conns, 0), busy(overload_conns, 0);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < overload_conns; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        if (!client.Connect("127.0.0.1", server.port()).ok() ||
            !client.OpenSession().ok()) {
          return;
        }
        Rng rng(9000 + c);
        const Value span =
            std::max<Value>(1, static_cast<Value>(rows / 1000));
        for (size_t q = 0; q < overload_queries; ++q) {
          const Value lo = static_cast<Value>(rng.Next() % rows);
          uint64_t count = 0;
          const int64_t s = NowNanos();
          Status st = client.Count(lo, lo + span, &count);
          if (st.ok()) {
            lat[c].push_back(NowNanos() - s);
            ++ok[c];
          } else if (st.IsBusy()) {
            ++busy[c];  // shed at the edge: immediate, no queueing
          } else {
            return;
          }
        }
        client.CloseSession();
      });
    }
    for (auto& t : threads) t.join();
    std::vector<int64_t> all;
    for (size_t c = 0; c < overload_conns; ++c) {
      all.insert(all.end(), lat[c].begin(), lat[c].end());
      ok_total += ok[c];
      busy_total += busy[c];
    }
    p99_ok_ms = PercentileMs(&all, 0.99);
    shed_total = server.admission().shed_total();
    server.Stop();
  }
  // Shedding "works" when overload produced refusals AND the admitted
  // requests kept a bounded tail: p99 under the configurable bound (the
  // engine did not silently queue the excess behind the cap).
  const double p99_bound_ms = static_cast<double>(
      EnvSize("AI_BENCH_OVERLOAD_P99_BOUND_MS", 250));
  const bool shed_works =
      busy_total > 0 && shed_total >= busy_total && p99_ok_ms < p99_bound_ms;
  std::printf(
      "overload (%zu conns over cap %zu): ok=%llu busy=%llu shed=%llu "
      "p99(ok)=%.3f ms bound=%.0f ms -> %s\n",
      overload_conns, cap, static_cast<unsigned long long>(ok_total),
      static_cast<unsigned long long>(busy_total),
      static_cast<unsigned long long>(shed_total), p99_ok_ms, p99_bound_ms,
      shed_works ? "shed works" : "SHED GATE FAILED");

  // ---- JSON artifact ----------------------------------------------------
  const char* json_env = std::getenv("AI_BENCH_SERVER_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env
                                               : "BENCH_server.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig16_server_scaling\",\n"
               "  \"rows\": %zu,\n  \"queries_per_conn\": %zu,\n"
               "  \"hardware_threads\": %u,\n  \"results\": [\n",
               rows, queries_per_conn,
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f,
                 "    {\"connections\": %zu, \"qps\": %.1f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                 sweep[i].connections, sweep[i].qps, sweep[i].p50_ms,
                 sweep[i].p99_ms, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"overload\": {\n"
      "    \"connections\": %zu,\n    \"global_inflight_cap\": %zu,\n"
      "    \"ok\": %llu,\n    \"busy\": %llu,\n    \"shed_total\": %llu,\n"
      "    \"p99_ok_ms\": %.4f,\n    \"p99_bound_ms\": %.1f,\n"
      "    \"shed_works\": %s\n  }\n}\n",
      overload_conns, cap, static_cast<unsigned long long>(ok_total),
      static_cast<unsigned long long>(busy_total),
      static_cast<unsigned long long>(shed_total), p99_ok_ms, p99_bound_ms,
      shed_works ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  if (!shed_works) std::exit(2);  // the CI smoke gates on this
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
