#ifndef ADAPTIDX_LATCH_LATCH_STATS_H_
#define ADAPTIDX_LATCH_LATCH_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace adaptidx {

/// \brief Global (per-index) latch statistics, updated with relaxed atomics.
///
/// A "conflict" is an acquisition that had to block because the latch was
/// held in an incompatible mode — the quantity plotted on the right of the
/// paper's Figure 1 and measured in Figure 15 (wait time).
class LatchStats {
 public:
  LatchStats() { Reset(); }

  void RecordRead(int64_t wait_ns, bool blocked) {
    read_acquires_.fetch_add(1, std::memory_order_relaxed);
    if (blocked) {
      read_conflicts_.fetch_add(1, std::memory_order_relaxed);
      read_wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
    }
  }

  void RecordWrite(int64_t wait_ns, bool blocked) {
    write_acquires_.fetch_add(1, std::memory_order_relaxed);
    if (blocked) {
      write_conflicts_.fetch_add(1, std::memory_order_relaxed);
      write_wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
    }
  }

  void RecordTryFailure() {
    try_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  /// \brief Accounts a batch of optimistic (latch-free, version-validated)
  /// piece reads: `attempts` reads were tried, `retries` of them failed —
  /// either aborted on an odd (crack-in-flight) version before reading or
  /// discarded on post-read validation mismatch — and `fallbacks` exhausted
  /// their retry budget and degraded to the latched read path. Retries are
  /// a subset of attempts, so retries/attempts is the optimistic failure
  /// rate. Batched per region walk so the optimistic fast path pays one
  /// atomic round instead of one per piece — these counters keep the
  /// fig14/fig15 wait breakdowns meaningful when no read latch is ever
  /// acquired.
  void RecordOptimisticReads(uint64_t attempts, uint64_t retries,
                             uint64_t fallbacks) {
    if (attempts > 0) {
      optimistic_attempts_.fetch_add(attempts, std::memory_order_relaxed);
    }
    if (retries > 0) {
      optimistic_retries_.fetch_add(retries, std::memory_order_relaxed);
    }
    if (fallbacks > 0) {
      optimistic_fallbacks_.fetch_add(fallbacks, std::memory_order_relaxed);
    }
  }

  /// \brief Accounts one snapshot-served (MVCC) read: a query answered
  /// against a pinned differential-store version without holding the
  /// side-table latch for the duration of the read. `epoch_lag` is how many
  /// updates committed between the snapshot's capture epoch and the read's
  /// completion — the staleness a long scan accumulated while the update
  /// stream ran unblocked beside it (0 when nothing committed meanwhile).
  /// These counters are the snapshot analogue of the optimistic ones above:
  /// they keep reader/writer interference observable when reads acquire no
  /// latch that could ever block.
  void RecordSnapshotRead(uint64_t epoch_lag) {
    snapshot_reads_.fetch_add(1, std::memory_order_relaxed);
    if (epoch_lag > 0) {
      snapshot_epoch_lag_.fetch_add(epoch_lag, std::memory_order_relaxed);
      uint64_t prev = snapshot_max_epoch_lag_.load(std::memory_order_relaxed);
      while (epoch_lag > prev &&
             !snapshot_max_epoch_lag_.compare_exchange_weak(
                 prev, epoch_lag, std::memory_order_relaxed)) {
      }
    }
  }

  /// \brief Accounts one O(1) delta-node publication by the MVCC write
  /// path: the commit linked one `SideStoreDelta` onto the version chain,
  /// which then held `chain_len` deltas. The running max of `chain_len` is
  /// the worst fold suffix any snapshot reader could have seen — the
  /// quantity the consolidation threshold bounds.
  void RecordDeltaPublish(uint64_t chain_len) {
    delta_publishes_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = delta_chain_max_.load(std::memory_order_relaxed);
    while (chain_len > prev &&
           !delta_chain_max_.compare_exchange_weak(
               prev, chain_len, std::memory_order_relaxed)) {
    }
  }

  /// \brief Accounts one delta-chain consolidation: `folded` chained
  /// deltas were materialized into a flat consolidated base (the periodic
  /// O(pending) step that keeps per-commit publication O(1) amortized).
  void RecordConsolidation(uint64_t folded) {
    consolidations_.fetch_add(1, std::memory_order_relaxed);
    consolidated_deltas_.fetch_add(folded, std::memory_order_relaxed);
  }

  /// \brief Accounts a batch of piece lookups performed by one region walk:
  /// `snapshot` lookups resolved their piece against the versioned boundary
  /// snapshot (no `structure_mu_` acquisition at all), `locked` lookups took
  /// the structure latch shared. The optimistic read path is expected to
  /// report zero locked lookups in the absence of snapshot staleness — the
  /// single-thread assertion that the last shared acquisition really left
  /// the read path.
  void RecordPieceLookups(uint64_t snapshot, uint64_t locked) {
    if (snapshot > 0) {
      piece_lookups_snapshot_.fetch_add(snapshot, std::memory_order_relaxed);
    }
    if (locked > 0) {
      piece_lookups_locked_.fetch_add(locked, std::memory_order_relaxed);
    }
  }

  /// \brief Accounts one chunked parallel crack: `chunks` chunk tasks were
  /// dispatched (including the one the cracking thread ran itself) and the
  /// swap-based refined merge took `merge_ns`.
  void RecordParallelCrack(uint64_t chunks, int64_t merge_ns) {
    parallel_cracks_.fetch_add(1, std::memory_order_relaxed);
    parallel_crack_chunks_.fetch_add(chunks, std::memory_order_relaxed);
    parallel_crack_merge_ns_.fetch_add(merge_ns, std::memory_order_relaxed);
  }

  /// \brief Accounts one coarse-granular floor hit: a piece at or below
  /// CrackingOptions::min_piece_size was sorted in place instead of split,
  /// capping piece-map growth.
  void RecordCoarseSortHit() {
    coarse_sort_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t read_acquires() const { return read_acquires_.load(); }
  uint64_t write_acquires() const { return write_acquires_.load(); }
  uint64_t read_conflicts() const { return read_conflicts_.load(); }
  uint64_t write_conflicts() const { return write_conflicts_.load(); }
  uint64_t try_failures() const { return try_failures_.load(); }
  uint64_t optimistic_attempts() const { return optimistic_attempts_.load(); }
  uint64_t optimistic_retries() const { return optimistic_retries_.load(); }
  uint64_t optimistic_fallbacks() const {
    return optimistic_fallbacks_.load();
  }
  uint64_t piece_lookups_snapshot() const {
    return piece_lookups_snapshot_.load();
  }
  uint64_t piece_lookups_locked() const {
    return piece_lookups_locked_.load();
  }
  uint64_t parallel_cracks() const { return parallel_cracks_.load(); }
  uint64_t parallel_crack_chunks() const {
    return parallel_crack_chunks_.load();
  }
  int64_t parallel_crack_merge_ns() const {
    return parallel_crack_merge_ns_.load();
  }
  uint64_t coarse_sort_hits() const { return coarse_sort_hits_.load(); }
  uint64_t snapshot_reads() const { return snapshot_reads_.load(); }
  uint64_t snapshot_epoch_lag() const { return snapshot_epoch_lag_.load(); }
  uint64_t snapshot_max_epoch_lag() const {
    return snapshot_max_epoch_lag_.load();
  }
  uint64_t delta_publishes() const { return delta_publishes_.load(); }
  uint64_t delta_chain_max() const { return delta_chain_max_.load(); }
  uint64_t consolidations() const { return consolidations_.load(); }
  uint64_t consolidated_deltas() const { return consolidated_deltas_.load(); }
  int64_t read_wait_ns() const { return read_wait_ns_.load(); }
  int64_t write_wait_ns() const { return write_wait_ns_.load(); }

  uint64_t total_conflicts() const {
    return read_conflicts() + write_conflicts();
  }
  int64_t total_wait_ns() const { return read_wait_ns() + write_wait_ns(); }

  void Reset() {
    read_acquires_ = 0;
    write_acquires_ = 0;
    read_conflicts_ = 0;
    write_conflicts_ = 0;
    try_failures_ = 0;
    optimistic_attempts_ = 0;
    optimistic_retries_ = 0;
    optimistic_fallbacks_ = 0;
    piece_lookups_snapshot_ = 0;
    piece_lookups_locked_ = 0;
    parallel_cracks_ = 0;
    parallel_crack_chunks_ = 0;
    parallel_crack_merge_ns_ = 0;
    coarse_sort_hits_ = 0;
    snapshot_reads_ = 0;
    snapshot_epoch_lag_ = 0;
    snapshot_max_epoch_lag_ = 0;
    delta_publishes_ = 0;
    delta_chain_max_ = 0;
    consolidations_ = 0;
    consolidated_deltas_ = 0;
    read_wait_ns_ = 0;
    write_wait_ns_ = 0;
  }

  std::string ToString() const;

 private:
  std::atomic<uint64_t> read_acquires_;
  std::atomic<uint64_t> write_acquires_;
  std::atomic<uint64_t> read_conflicts_;
  std::atomic<uint64_t> write_conflicts_;
  std::atomic<uint64_t> try_failures_;
  std::atomic<uint64_t> optimistic_attempts_;
  std::atomic<uint64_t> optimistic_retries_;
  std::atomic<uint64_t> optimistic_fallbacks_;
  std::atomic<uint64_t> piece_lookups_snapshot_;
  std::atomic<uint64_t> piece_lookups_locked_;
  std::atomic<uint64_t> parallel_cracks_;
  std::atomic<uint64_t> parallel_crack_chunks_;
  std::atomic<int64_t> parallel_crack_merge_ns_;
  std::atomic<uint64_t> coarse_sort_hits_;
  std::atomic<uint64_t> snapshot_reads_;
  std::atomic<uint64_t> snapshot_epoch_lag_;
  std::atomic<uint64_t> snapshot_max_epoch_lag_;
  std::atomic<uint64_t> delta_publishes_;
  std::atomic<uint64_t> delta_chain_max_;
  std::atomic<uint64_t> consolidations_;
  std::atomic<uint64_t> consolidated_deltas_;
  std::atomic<int64_t> read_wait_ns_;
  std::atomic<int64_t> write_wait_ns_;
};

/// \brief Per-acquisition sinks threaded from the query context down into
/// latch acquisitions so wait time and conflicts can be attributed to
/// individual queries (Figure 15's per-query breakdown).
///
/// All pointers may be null; null sinks are skipped.
struct LatchAcquireContext {
  LatchStats* global = nullptr;   ///< index-wide aggregate
  int64_t* wait_ns = nullptr;     ///< per-query accumulated wait time
  uint64_t* conflicts = nullptr;  ///< per-query blocked-acquisition count
};

}  // namespace adaptidx

#endif  // ADAPTIDX_LATCH_LATCH_STATS_H_
