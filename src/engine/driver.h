#ifndef ADAPTIDX_ENGINE_DRIVER_H_
#define ADAPTIDX_ENGINE_DRIVER_H_

#include <cstdint>
#include <vector>

#include "core/adaptive_index.h"
#include "engine/operators.h"
#include "util/histogram.h"
#include "workload/workload.h"

namespace adaptidx {

/// \brief One completed query with its instrumentation, as recorded by the
/// driver.
struct PerQueryRecord {
  RangeQuery query;
  QueryResult result;
  QueryStats stats;
  uint32_t client_id = 0;
  size_t client_seq = 0;  ///< index within the client's own stream
};

/// \brief Outcome of a multi-client run.
struct RunResult {
  Status status;
  double total_seconds = 0;    ///< wall time until the last client finished
  double throughput_qps = 0;   ///< queries / total_seconds
  size_t num_queries = 0;
  size_t num_clients = 0;
  Histogram response_hist;     ///< per-query response times (ns)
  uint64_t total_conflicts = 0;
  int64_t total_wait_ns = 0;
  int64_t total_crack_ns = 0;
  int64_t total_init_ns = 0;
  uint64_t total_cracks = 0;
  uint64_t refinements_skipped = 0;
  /// Per-query records sorted by completion time (the "query sequence" axis
  /// of Figures 11 and 15). Empty unless record_per_query.
  std::vector<PerQueryRecord> records;
};

/// \brief Options of a driver run.
struct DriverOptions {
  size_t num_clients = 1;
  bool record_per_query = true;
};

/// \brief Multi-client query driver reproducing the paper's experimental
/// set-up (Section 6.2): the query sequence is split into `num_clients`
/// contiguous streams ("we use 2 clients ... each one fires 512 queries"),
/// all clients start together on a barrier, and the reported total time is
/// "the time perceived by the last client to receive all answers".
class Driver {
 public:
  static RunResult Run(AdaptiveIndex* index,
                       const std::vector<RangeQuery>& queries,
                       const DriverOptions& opts);
};

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_DRIVER_H_
