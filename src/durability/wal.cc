#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "storage/file_io.h"
#include "util/crc32.h"
#include "util/wire.h"

namespace adaptidx {

namespace {

constexpr char kSegmentMagic[8] = {'A', 'D', 'I', 'X', 'W', 'A', 'L', '1'};
constexpr size_t kSegmentHeaderBytes = sizeof(kSegmentMagic) + 8;
constexpr size_t kRecordPayloadBytes = 8 + 1 + 8 + 4;  // lsn, op, value, rowid
constexpr size_t kRecordBytes = 4 + 4 + kRecordPayloadBytes;

std::string SegmentName(uint64_t first_lsn) {
  return "wal-" + std::to_string(first_lsn) + ".log";
}

/// Serializes one record (length, crc, payload) onto `out`.
void AppendRecord(uint64_t lsn, CommitSink::OpType op, Value value,
                  RowId row_id, std::string* out) {
  WireWriter payload;
  payload.PutU64(lsn);
  payload.PutU8(static_cast<uint8_t>(op));
  payload.PutI64(value);
  payload.PutU32(row_id);
  const std::string p = payload.Take();
  WireWriter rec;
  rec.PutU32(static_cast<uint32_t>(p.size()));
  rec.PutU32(Crc32(p.data(), p.size()));
  out->append(rec.Take());
  out->append(p);
}

Status WriteFully(int fd, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t left = size;
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Corruption(std::string("wal write failed: ") +
                                std::strerror(errno));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteAheadLog::Open(const std::string& dir, const WalOptions& opts,
                           uint64_t next_lsn,
                           std::unique_ptr<WriteAheadLog>* out) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::InvalidArgument("cannot create wal dir: " + dir);
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(dir, opts, next_lsn));
  {
    std::lock_guard<std::mutex> io(wal->io_mu_);
    Status s = wal->OpenSegmentLocked(next_lsn);
    if (!s.ok()) return s;
  }
  // Make the new segment's directory entry durable before any commit is
  // acknowledged out of it.
  Status s = SyncPath(dir);
  if (!s.ok()) return s;
  wal->flusher_ = std::thread(&WriteAheadLog::FlusherLoop, wal.get());
  *out = std::move(wal);
  return Status::OK();
}

WriteAheadLog::WriteAheadLog(std::string dir, WalOptions opts,
                             uint64_t next_lsn)
    : dir_(std::move(dir)), opts_(opts), next_lsn_(next_lsn) {
  durable_lsn_ = next_lsn - 1;
  claimed_lsn_ = next_lsn - 1;
}

bool WriteAheadLog::AwaitInFlightBatchLocked(
    std::unique_lock<std::mutex>& lk) {
  durable_cv_.wait(
      lk, [&] { return durable_lsn_ >= claimed_lsn_ || !io_error_.ok(); });
  return io_error_.ok();
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    flusher_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> io(io_mu_);
  if (fd_ >= 0) {
    // Final best-effort sync: an unacknowledged tail may or may not land,
    // which recovery tolerates either way.
    SyncFd(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Status WriteAheadLog::OpenSegmentLocked(uint64_t first_lsn) {
  const std::string path = dir_ + "/" + SegmentName(first_lsn);
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open wal segment: " + path);
  }
  WireWriter header;
  for (char c : kSegmentMagic) header.PutU8(static_cast<uint8_t>(c));
  header.PutU64(first_lsn);
  const std::string h = header.Take();
  Status s = WriteFully(fd, h.data(), h.size());
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  fd_ = fd;
  segment_first_lsn_ = first_lsn;
  return Status::OK();
}

uint64_t WriteAheadLog::LogCommit(OpType op, Value value, RowId row_id) {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t lsn = next_lsn_++;
  AppendRecord(lsn, op, value, row_id, &pending_);
  ++pending_records_;
  ++stats_.records_appended;
  flusher_cv_.notify_one();
  return lsn;
}

Status WriteAheadLog::WaitDurable(uint64_t lsn) {
  if (opts_.fsync_policy == FsyncPolicy::kNone) {
    // The contract degrades to "handed to the OS": the flusher will write
    // it out without fsync; an ack only promises survival of a process
    // crash, not a power failure.
    return Status::OK();
  }
  std::unique_lock<std::mutex> lk(mu_);
  durable_cv_.wait(lk, [&] { return durable_lsn_ >= lsn || !io_error_.ok(); });
  return io_error_;
}

void WriteAheadLog::FlusherLoop() {
  for (;;) {
    std::string batch;
    uint64_t batch_records = 0;
    uint64_t batch_last_lsn = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      flusher_cv_.wait(lk, [&] { return pending_records_ > 0 || stop_; });
      if (pending_records_ == 0 && stop_) return;
      batch = std::move(pending_);
      pending_.clear();
      batch_records = pending_records_;
      pending_records_ = 0;
      batch_last_lsn = next_lsn_ - 1;
      claimed_lsn_ = batch_last_lsn;
    }
    Status s;
    uint64_t bytes = 0;
    uint64_t syncs = 0;
    {
      std::lock_guard<std::mutex> io(io_mu_);
      if (opts_.fsync_policy == FsyncPolicy::kAlways) {
        // Force-at-commit: each record of the drained batch pays its own
        // write+fsync, so kAlways measures what per-commit forcing costs
        // rather than borrowing the batching win it is compared against.
        size_t off = 0;
        while (s.ok() && off < batch.size()) {
          uint32_t len = 0;
          std::memcpy(&len, batch.data() + off, sizeof(len));
          const size_t rec = 4 + 4 + len;
          s = WriteAndSyncLocked(batch.substr(off, rec), false, &bytes,
                                 &syncs);
          off += rec;
        }
      } else {
        s = WriteAndSyncLocked(batch, false, &bytes, &syncs);
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!s.ok() && io_error_.ok()) io_error_ = s;
      if (s.ok()) durable_lsn_ = batch_last_lsn;
      ++stats_.flush_batches;
      stats_.max_batch = std::max(stats_.max_batch, batch_records);
      stats_.bytes_written += bytes;
      stats_.fsync_count += syncs;
      durable_cv_.notify_all();
    }
  }
}

Status WriteAheadLog::WriteAndSyncLocked(const std::string& buf,
                                         bool force_sync, uint64_t* bytes,
                                         uint64_t* syncs) {
  // io_mu_ held, mu_ NOT touched: Rotate acquires io_mu_ while holding
  // mu_, so taking mu_ here would close an ABBA cycle with the flusher.
  // Counters are returned for the caller to account under mu_.
  if (fd_ < 0) return Status::InvalidArgument("wal segment not open");
  if (!buf.empty()) {
    Status s = WriteFully(fd_, buf.data(), buf.size());
    if (!s.ok()) return s;
    *bytes += buf.size();
  }
  if (opts_.fsync_policy != FsyncPolicy::kNone || force_sync) {
    Status s = SyncFd(fd_);
    if (!s.ok()) return s;
    ++*syncs;
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  // Drain whatever is pending through our own write (not the flusher) so
  // the caller has a hard happens-before: everything logged before Sync()
  // is on disk when it returns.
  std::string batch;
  uint64_t batch_last_lsn = 0;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!AwaitInFlightBatchLocked(lk)) return io_error_;
    batch = std::move(pending_);
    pending_.clear();
    pending_records_ = 0;
    batch_last_lsn = next_lsn_ - 1;
    claimed_lsn_ = batch_last_lsn;
  }
  Status s;
  uint64_t bytes = 0;
  uint64_t syncs = 0;
  {
    std::lock_guard<std::mutex> io(io_mu_);
    s = WriteAndSyncLocked(batch, /*force_sync=*/true, &bytes, &syncs);
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (!s.ok()) {
    if (io_error_.ok()) io_error_ = s;
  } else if (durable_lsn_ < batch_last_lsn) {
    durable_lsn_ = batch_last_lsn;
  }
  stats_.bytes_written += bytes;
  stats_.fsync_count += syncs;
  durable_cv_.notify_all();
  return s;
}

Status WriteAheadLog::Rotate() {
  // Seal under both locks in the fixed order (mu_ then io_mu_): the drain
  // must observe a pending buffer that can no longer grow into the sealed
  // segment, and the flusher never sleeps holding io_mu_, so the nested
  // acquisition cannot deadlock.
  std::string batch;
  uint64_t next;
  std::unique_lock<std::mutex> lk(mu_);
  // A batch the flusher claimed but has not written yet would otherwise be
  // written AFTER our drain — out of LSN order, or into the next segment.
  if (!AwaitInFlightBatchLocked(lk)) return io_error_;
  batch = std::move(pending_);
  pending_.clear();
  pending_records_ = 0;
  next = next_lsn_;
  claimed_lsn_ = next - 1;
  std::lock_guard<std::mutex> io(io_mu_);
  lk.unlock();
  uint64_t bytes = 0;
  uint64_t syncs = 0;
  Status s = WriteAndSyncLocked(batch, /*force_sync=*/true, &bytes, &syncs);
  if (s.ok()) {
    if (::close(fd_) != 0) s = Status::Corruption("wal close failed");
    fd_ = -1;
  }
  if (s.ok()) s = OpenSegmentLocked(next);
  if (s.ok()) s = SyncPath(dir_);
  lk.lock();
  if (!s.ok()) {
    if (io_error_.ok()) io_error_ = s;
  } else {
    if (durable_lsn_ < next - 1) durable_lsn_ = next - 1;
    ++stats_.rotations;
  }
  stats_.bytes_written += bytes;
  stats_.fsync_count += syncs;
  durable_cv_.notify_all();
  return s;
}

Status WriteAheadLog::RemoveSegmentsBelow(uint64_t lsn) {
  auto segments = ListWalSegments(dir_);
  std::lock_guard<std::mutex> io(io_mu_);
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].first == segment_first_lsn_) continue;  // current
    // A sealed segment's records span [first_lsn, next segment's
    // first_lsn); it is disposable only when that whole span is <= lsn.
    const uint64_t next_first = i + 1 < segments.size()
                                    ? segments[i + 1].first
                                    : segments[i].first;
    if (segments[i].first > lsn || next_first > lsn + 1) continue;
    std::error_code ec;
    std::filesystem::remove(segments[i].second, ec);
    if (ec) {
      return Status::Corruption("cannot remove wal segment: " +
                                segments[i].second);
    }
  }
  return SyncPath(dir_);
}

uint64_t WriteAheadLog::last_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_ - 1;
}

uint64_t WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return durable_lsn_;
}

WalStats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

Status ScanWalSegment(const std::string& path, WalSegmentScan* out) {
  out->records.clear();
  out->valid_bytes = 0;
  out->torn = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open wal segment: " + path);
  std::string data;
  {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  }
  std::fclose(f);
  if (data.size() < kSegmentHeaderBytes ||
      std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::Corruption("bad wal segment header: " + path);
  }
  {
    WireReader r(data.data() + sizeof(kSegmentMagic), 8);
    r.GetU64(&out->first_lsn);
  }
  size_t off = kSegmentHeaderBytes;
  uint64_t expect_lsn = out->first_lsn;
  while (off < data.size()) {
    if (data.size() - off < 8) break;  // torn length/crc prefix
    WireReader head(data.data() + off, 8);
    uint32_t len = 0;
    uint32_t crc = 0;
    head.GetU32(&len);
    head.GetU32(&crc);
    if (len != kRecordPayloadBytes) break;      // torn or corrupt length
    if (data.size() - off - 8 < len) break;     // torn payload
    const char* payload = data.data() + off + 8;
    if (Crc32(payload, len) != crc) break;      // torn or flipped payload
    WireReader r(payload, len);
    WalRecord rec;
    uint8_t op = 0;
    r.GetU64(&rec.lsn);
    r.GetU8(&op);
    r.GetI64(&rec.value);
    r.GetU32(&rec.row_id);
    if (!r.Exhausted() || op < 1 || op > 3) break;
    if (rec.lsn != expect_lsn) {
      // A CRC-valid record with the wrong sequence number cannot be a torn
      // tail; the log itself is inconsistent.
      return Status::Corruption("wal lsn discontinuity in " + path);
    }
    rec.op = static_cast<CommitSink::OpType>(op);
    out->records.push_back(rec);
    ++expect_lsn;
    off += kRecordBytes;
    out->valid_bytes = off;
  }
  out->valid_bytes =
      out->records.empty() ? kSegmentHeaderBytes : out->valid_bytes;
  out->torn = out->valid_bytes < data.size();
  return Status::OK();
}

std::vector<std::pair<uint64_t, std::string>> ListWalSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0) continue;
    const size_t dot = name.rfind(".log");
    if (dot == std::string::npos || dot <= 4) continue;
    char* end = nullptr;
    const uint64_t first = std::strtoull(name.c_str() + 4, &end, 10);
    if (end != name.c_str() + dot) continue;
    out.emplace_back(first, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace adaptidx
