#ifndef ADAPTIDX_WORKLOAD_WORKLOAD_H_
#define ADAPTIDX_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/types.h"

namespace adaptidx {

/// \brief The paper's two query templates (Section 6) plus a min/max
/// variant exercising the unified execution path:
///   Q1: select count(*)        from R where v1 < A < v2
///   Q2: select sum(A)          from R where v1 < A < v2
///   Q3: select min(A), max(A)  from R where v1 < A < v2
enum class QueryType { kCount, kSum, kMinMax };

std::string ToString(QueryType type);

/// \brief A range query with the predicate normalized to the half-open
/// integer range [lo, hi).
struct RangeQuery {
  Value lo;
  Value hi;
  QueryType type = QueryType::kCount;
};

/// \brief How query ranges are placed over the domain.
enum class QueryDistribution {
  /// Uniformly random placement — the paper's default ("random range
  /// queries").
  kUniform,
  /// Skewed placement concentrating on the low end of the domain
  /// (hotspot workloads).
  kSkewed,
  /// Left-to-right sliding window — adversarial for plain cracking and the
  /// motivating case for stochastic cracking [16].
  kSequential,
};

std::string ToString(QueryDistribution dist);

/// \brief Parameters of a generated query sequence.
struct WorkloadOptions {
  size_t num_queries = 1024;
  /// Fraction of the value domain covered by each query; the paper sweeps
  /// {0.01%, 0.1%, 1%, 10%, 50%, 90%}.
  double selectivity = 0.0001;
  QueryType type = QueryType::kSum;
  QueryDistribution distribution = QueryDistribution::kUniform;
  /// Skew intensity in [0, 1) for kSkewed.
  double skew = 0.8;
  uint64_t seed = 7;
};

/// \brief Paper-style contiguous partitioning of a query sequence into
/// per-client streams (Section 6.2: each client fires a contiguous slice of
/// the sequence). Returns `[begin, end)` index pairs, one per client;
/// remainder queries go to the leading clients. `num_clients` is clamped to
/// `num_queries`.
std::vector<std::pair<size_t, size_t>> SplitStreams(size_t num_queries,
                                                    size_t num_clients);

/// \brief Deterministic range-query generator over an integer value domain.
class WorkloadGenerator {
 public:
  /// \brief Domain is the half-open value interval [domain_lo, domain_hi)
  /// that queries draw bounds from (for the paper's data set of n unique
  /// integers: [0, n)).
  WorkloadGenerator(Value domain_lo, Value domain_hi)
      : domain_lo_(domain_lo), domain_hi_(domain_hi) {}

  /// \brief Generates `opts.num_queries` queries of width
  /// `selectivity * |domain|` (at least 1), placed per the distribution.
  std::vector<RangeQuery> Generate(const WorkloadOptions& opts) const;

  Value domain_lo() const { return domain_lo_; }
  Value domain_hi() const { return domain_hi_; }

 private:
  Value domain_lo_;
  Value domain_hi_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_WORKLOAD_WORKLOAD_H_
