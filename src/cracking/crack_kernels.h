#ifndef ADAPTIDX_CRACKING_CRACK_KERNELS_H_
#define ADAPTIDX_CRACKING_CRACK_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <utility>

#include "storage/types.h"

namespace adaptidx {

/// \file
/// In-place partitioning kernels used by database cracking (Section 5.2).
///
/// Every crack in this library has the normalized semantics: a crack on
/// pivot `v` over the range [begin, end) leaves all elements with value < v
/// before the returned split position and all elements with value >= v at or
/// after it. Cracking is "an incremental quicksort where each query may
/// result in a partitioning step".
///
/// The kernels are templated over an accessor with
///   `Value ValueAt(Position) const` and `void Swap(Position, Position)`
/// so that both cracker-array layouts of Figure 7 (rowID-value pairs and
/// pair-of-arrays) share one implementation without virtual dispatch on the
/// hot path.

/// \brief Two-way crack: partitions [begin, end) around `pivot`.
/// \return the split position p: [begin, p) all < pivot, [p, end) all
/// >= pivot.
template <typename Accessor>
Position CrackInTwo(Accessor& a, Position begin, Position end, Value pivot) {
  int64_t x1 = static_cast<int64_t>(begin);
  int64_t x2 = static_cast<int64_t>(end) - 1;
  while (x1 <= x2) {
    if (a.ValueAt(static_cast<Position>(x1)) < pivot) {
      ++x1;
    } else {
      while (x2 >= x1 && a.ValueAt(static_cast<Position>(x2)) >= pivot) {
        --x2;
      }
      if (x1 < x2) {
        a.Swap(static_cast<Position>(x1), static_cast<Position>(x2));
        ++x1;
        --x2;
      }
    }
  }
  return static_cast<Position>(x1);
}

/// \brief Three-way crack (single pass): partitions [begin, end) into
/// `< lo`, `[lo, hi)`, and `>= hi` regions. Used when both query bounds fall
/// into the same piece, saving one pass over the piece.
/// \return pair (p1, p2): [begin, p1) < lo, [p1, p2) in [lo, hi),
/// [p2, end) >= hi. Requires lo <= hi.
template <typename Accessor>
std::pair<Position, Position> CrackInThree(Accessor& a, Position begin,
                                           Position end, Value lo, Value hi) {
  // Dutch-national-flag style three-way partition.
  int64_t low = static_cast<int64_t>(begin);   // next slot for "< lo"
  int64_t mid = static_cast<int64_t>(begin);   // scan cursor
  int64_t high = static_cast<int64_t>(end);    // first "> = hi" slot
  while (mid < high) {
    const Value v = a.ValueAt(static_cast<Position>(mid));
    if (v < lo) {
      if (low != mid) {
        a.Swap(static_cast<Position>(low), static_cast<Position>(mid));
      }
      ++low;
      ++mid;
    } else if (v >= hi) {
      --high;
      a.Swap(static_cast<Position>(mid), static_cast<Position>(high));
    } else {
      ++mid;
    }
  }
  return {static_cast<Position>(low), static_cast<Position>(mid)};
}

/// \brief Verifies the crack-in-two postcondition over [begin, end); used by
/// tests and debug assertions.
template <typename Accessor>
bool VerifyCrackInTwo(const Accessor& a, Position begin, Position split,
                      Position end, Value pivot) {
  for (Position i = begin; i < split; ++i) {
    if (a.ValueAt(i) >= pivot) return false;
  }
  for (Position i = split; i < end; ++i) {
    if (a.ValueAt(i) < pivot) return false;
  }
  return true;
}

/// \brief Counts elements of [begin, end) whose value lies in [lo, hi)
/// without reorganizing — the refinement-free fallback used by conflict
/// avoidance and the lazy strategy.
template <typename Accessor>
uint64_t ScanCount(const Accessor& a, Position begin, Position end, Value lo,
                   Value hi) {
  uint64_t n = 0;
  for (Position i = begin; i < end; ++i) {
    const Value v = a.ValueAt(i);
    n += (v >= lo && v < hi) ? 1 : 0;
  }
  return n;
}

/// \brief Sums elements of [begin, end) whose value lies in [lo, hi) without
/// reorganizing.
template <typename Accessor>
int64_t ScanSum(const Accessor& a, Position begin, Position end, Value lo,
                Value hi) {
  int64_t s = 0;
  for (Position i = begin; i < end; ++i) {
    const Value v = a.ValueAt(i);
    if (v >= lo && v < hi) s += v;
  }
  return s;
}

/// \brief Sums all elements of [begin, end) positionally (the region is
/// known to qualify because it lies between two cracks).
template <typename Accessor>
int64_t PositionalSum(const Accessor& a, Position begin, Position end) {
  int64_t s = 0;
  for (Position i = begin; i < end; ++i) s += a.ValueAt(i);
  return s;
}

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_CRACK_KERNELS_H_
