/// \file Differential and protocol tests for the optimistic
/// (seqlock-validated, latch-free) piece-read path:
/// ConcurrencyMode::kOptimistic / kAdaptive. Complements
/// cracking_concurrent_test.cc (raw-index races) with session-level
/// differentials across all five modes, the optimistic stats counters, and
/// the deterministic kAdaptive demotion arithmetic.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/cracking_index.h"
#include "core/index_factory.h"
#include "engine/session.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adaptidx {
namespace {

constexpr size_t kRows = 20000;

CrackingOptions OptionsFor(ConcurrencyMode mode) {
  CrackingOptions opts;
  opts.mode = mode;
  return opts;
}

// ------------------------------------------------- five-mode differential

/// All five concurrency modes must agree with the scan oracle on every
/// query kind. kNone is only valid single-threaded; the latched and
/// optimistic modes run under concurrent sessions submitting batches onto a
/// shared pool.
TEST(OptimisticDifferentialTest, FiveModesAgreeWithOracleUnderSessions) {
  Column column = Column::UniqueRandom("A", kRows, 4242);
  RangeOracle oracle(column);
  ThreadPool pool(4);

  const ConcurrencyMode modes[] = {
      ConcurrencyMode::kNone, ConcurrencyMode::kColumnLatch,
      ConcurrencyMode::kPieceLatch, ConcurrencyMode::kOptimistic,
      ConcurrencyMode::kAdaptive};
  for (ConcurrencyMode mode : modes) {
    SCOPED_TRACE(ToString(mode));
    CrackingIndex index(&column, OptionsFor(mode));
    const bool concurrent = mode != ConcurrencyMode::kNone;

    auto run_session = [&](uint64_t seed) {
      auto session =
          Session::OnIndex(&index, concurrent ? &pool : nullptr);
      Rng rng(seed);
      std::vector<Query> batch;
      for (int i = 0; i < 120; ++i) {
        Value lo = rng.UniformRange(0, kRows);
        Value hi = rng.UniformRange(0, kRows);
        if (lo > hi) std::swap(lo, hi);
        switch (i % 4) {
          case 0:
            batch.push_back(Query::Count("", "", lo, hi));
            break;
          case 1:
            batch.push_back(Query::Sum("", "", lo, hi));
            break;
          case 2:
            batch.push_back(
                Query::RowIds("", "", lo, std::min<Value>(hi, lo + 2000)));
            break;
          default:
            batch.push_back(Query::MinMax("", "", lo, hi));
            break;
        }
      }
      std::vector<QueryTicket> tickets;
      if (concurrent) {
        tickets = session->SubmitBatch(batch);
      }
      bool ok = true;
      for (size_t i = 0; i < batch.size(); ++i) {
        QueryResult result;
        if (concurrent) {
          if (!tickets[i].status().ok()) {
            ok = false;
            continue;
          }
          result = tickets[i].result();
        } else {
          if (!session->Execute(batch[i], &result).ok()) {
            ok = false;
            continue;
          }
        }
        const Value lo = batch[i].range.lo;
        const Value hi = batch[i].range.hi;
        switch (batch[i].kind) {
          case QueryKind::kCount:
            ok &= result.count == oracle.Count(lo, hi);
            break;
          case QueryKind::kSum:
            ok &= result.sum == oracle.Sum(lo, hi);
            break;
          case QueryKind::kRowIds:
            ok &= oracle.CheckRowIds(lo, hi, result.row_ids);
            break;
          case QueryKind::kMinMax: {
            Value omn = 0;
            Value omx = 0;
            const bool ofound = oracle.MinMax(lo, hi, &omn, &omx);
            ok &= result.has_minmax == ofound &&
                  (!ofound || (result.min_value == omn &&
                               result.max_value == omx));
            break;
          }
          default:
            break;
        }
      }
      return ok;
    };

    if (concurrent) {
      std::atomic<bool> all_ok{true};
      std::vector<std::thread> clients;
      for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
          if (!run_session(1000 + static_cast<uint64_t>(c) * 131)) {
            all_ok.store(false);
          }
        });
      }
      for (auto& t : clients) t.join();
      EXPECT_TRUE(all_ok.load());
    } else {
      EXPECT_TRUE(run_session(1000));
    }
    EXPECT_TRUE(index.ValidateStructure());
  }
}

// --------------------------------------------------- optimistic counters

TEST(OptimisticStatsTest, SingleThreadedReadsNeverLatchNeverRetry) {
  // Uncontended: every optimistic read validates on the first try, no
  // fallback ever fires, and — the point of the mode — the aggregation path
  // performs no read-latch acquisitions at all, while the piece-latch mode
  // pays one per piece touched.
  Column column = Column::UniqueRandom("A", kRows, 7);
  RangeOracle oracle(column);

  CrackingIndex opt(&column, OptionsFor(ConcurrencyMode::kOptimistic));
  CrackingIndex pess(&column, OptionsFor(ConcurrencyMode::kPieceLatch));
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    Value lo = rng.UniformRange(0, kRows);
    Value hi = rng.UniformRange(0, kRows);
    if (lo > hi) std::swap(lo, hi);
    QueryContext c1;
    QueryContext c2;
    int64_t s1 = 0;
    int64_t s2 = 0;
    ASSERT_TRUE(opt.RangeSum(ValueRange{lo, hi}, &c1, &s1).ok());
    ASSERT_TRUE(pess.RangeSum(ValueRange{lo, hi}, &c2, &s2).ok());
    ASSERT_EQ(s1, oracle.Sum(lo, hi));
    ASSERT_EQ(s2, s1);
  }
  const LatchStats& so = opt.latch_stats();
  const LatchStats& sp = pess.latch_stats();
  EXPECT_GT(so.optimistic_attempts(), 0u);
  EXPECT_EQ(so.optimistic_retries(), 0u);
  EXPECT_EQ(so.optimistic_fallbacks(), 0u);
  EXPECT_GT(sp.read_acquires(), 0u);
  // Optimistic reads take no read latch; the only shared-latch traffic left
  // is on the write (crack) side.
  EXPECT_EQ(so.read_acquires(), 0u);
  EXPECT_EQ(sp.optimistic_attempts(), 0u);
}

TEST(OptimisticStatsTest, CountersConsistentUnderContention) {
  // Readers hammer a hot range while crackers keep refining inside it.
  // Whatever the interleaving, results stay exact and the counters stay
  // consistent (attempts count completed reads; retries/fallbacks only
  // happen when crackers actually interleave).
  Column column = Column::UniqueRandom("A", kRows, 11);
  RangeOracle oracle(column);
  CrackingIndex index(&column, OptionsFor(ConcurrencyMode::kOptimistic));
  {
    QueryContext ctx;
    uint64_t n = 0;
    ASSERT_TRUE(index.RangeCount(ValueRange{1000, 19000}, &ctx, &n).ok());
  }
  const int64_t hot_sum = oracle.Sum(1000, 19000);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + t);
      for (int i = 0; i < 150 && ok.load(); ++i) {
        QueryContext ctx;
        if (t % 2 == 0) {
          int64_t sum = 0;
          if (!index.RangeSum(ValueRange{1000, 19000}, &ctx, &sum).ok() ||
              sum != hot_sum) {
            ok.store(false);
          }
        } else {
          const Value lo = rng.UniformRange(1000, 18000);
          uint64_t count = 0;
          if (!index.RangeCount(ValueRange{lo, lo + 250}, &ctx, &count)
                   .ok() ||
              count != oracle.Count(lo, lo + 250)) {
            ok.store(false);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
  const LatchStats& s = index.latch_stats();
  EXPECT_GT(s.optimistic_attempts(), 0u);
  // Fallbacks imply at least max_retries failed validations each.
  CrackingOptions defaults;
  EXPECT_GE(s.optimistic_retries(),
            s.optimistic_fallbacks() *
                static_cast<uint64_t>(defaults.optimistic.max_retries));
}

// ------------------------------------------------ kAdaptive policy rules

TEST(OptimisticPolicyTest, DemotionAndRepromotionArithmetic) {
  OptimisticReadPolicy p;  // defaults: threshold 8, penalty 4, cap 32
  EXPECT_FALSE(p.Demoted(0));
  EXPECT_FALSE(p.Demoted(p.demote_threshold - 1));
  EXPECT_TRUE(p.Demoted(p.demote_threshold));

  // Two fallbacks demote from a cold start.
  int32_t c = 0;
  c = p.AfterFallback(c);
  EXPECT_FALSE(p.Demoted(c));
  c = p.AfterFallback(c);
  EXPECT_TRUE(p.Demoted(c));

  // The cap bounds how deep a burst can dig.
  for (int i = 0; i < 100; ++i) c = p.AfterFallback(c);
  EXPECT_EQ(c, p.contention_cap);

  // Successes decay back below the threshold: re-promotion.
  int decays = 0;
  while (p.Demoted(c)) {
    c = p.AfterSuccess(c);
    ++decays;
    ASSERT_LT(decays, 1000);
  }
  EXPECT_EQ(c, p.demote_threshold - 1);
  EXPECT_EQ(p.AfterSuccess(0), 0);  // floor

  // Demoted pieces probe every Nth read; period 0 disables probing.
  EXPECT_FALSE(p.ProbeNow(1));
  EXPECT_TRUE(p.ProbeNow(p.probe_period));
  EXPECT_TRUE(p.ProbeNow(2 * p.probe_period));
  OptimisticReadPolicy never;
  never.probe_period = 0;
  EXPECT_FALSE(never.ProbeNow(1));
  EXPECT_FALSE(never.ProbeNow(0));
}

TEST(OptimisticPolicyTest, AdaptiveModeStaysCorrectWithTinyThresholds) {
  // Aggressive demotion settings force the adaptive machinery (demote,
  // probe, re-promote) to actually cycle during a contended run; the
  // differential then proves the transitions never compromise answers.
  Column column = Column::UniqueRandom("A", kRows, 13);
  RangeOracle oracle(column);
  CrackingOptions opts;
  opts.mode = ConcurrencyMode::kAdaptive;
  opts.optimistic.max_retries = 1;
  opts.optimistic.demote_threshold = 1;
  opts.optimistic.fallback_penalty = 1;
  opts.optimistic.probe_period = 2;
  CrackingIndex index(&column, opts);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(700 + t);
      for (int i = 0; i < 150 && ok.load(); ++i) {
        Value lo = rng.UniformRange(0, kRows - 400);
        QueryContext ctx;
        int64_t sum = 0;
        if (!index.RangeSum(ValueRange{lo, lo + 400}, &ctx, &sum).ok() ||
            sum != oracle.Sum(lo, lo + 400)) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

// ------------------------------------------------------ session plumbing

TEST(OptimisticSessionTest, LatchStatsVisibleThroughSession) {
  Column column = Column::UniqueRandom("A", kRows, 17);
  RangeOracle oracle(column);
  CrackingOptions opts;
  opts.mode = ConcurrencyMode::kOptimistic;
  CrackingIndex index(&column, opts);
  auto session = Session::OnIndex(&index, nullptr);
  for (int i = 0; i < 50; ++i) {
    int64_t sum = 0;
    ASSERT_TRUE(
        session->Sum("", "", i * 100, i * 100 + 5000, &sum).ok());
    ASSERT_EQ(sum, oracle.Sum(i * 100, i * 100 + 5000));
  }
  const LatchStats* stats = session->IndexLatchStats("", "");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->optimistic_attempts(), 0u);
  EXPECT_EQ(stats->optimistic_fallbacks(), 0u);
  EXPECT_EQ(stats->read_acquires(), 0u);
}

TEST(OptimisticSessionTest, ConfigKeyDistinguishesOptimisticModes) {
  // Optimistic configs are distinct physical indexes: mode always keys, and
  // the policy block keys only when consulted.
  IndexConfig piece;
  piece.cracking.mode = ConcurrencyMode::kPieceLatch;
  IndexConfig optimistic;
  optimistic.cracking.mode = ConcurrencyMode::kOptimistic;
  IndexConfig adaptive;
  adaptive.cracking.mode = ConcurrencyMode::kAdaptive;
  EXPECT_NE(IndexConfigKey(piece), IndexConfigKey(optimistic));
  EXPECT_NE(IndexConfigKey(optimistic), IndexConfigKey(adaptive));

  IndexConfig tuned = optimistic;
  tuned.cracking.optimistic.max_retries = 9;
  EXPECT_NE(IndexConfigKey(optimistic), IndexConfigKey(tuned));

  // Under a latched mode the policy block is never consulted and must not
  // split catalog entries.
  IndexConfig piece_tuned = piece;
  piece_tuned.cracking.optimistic.max_retries = 9;
  EXPECT_EQ(IndexConfigKey(piece), IndexConfigKey(piece_tuned));
}

}  // namespace
}  // namespace adaptidx
