#ifndef ADAPTIDX_CRACKING_OPTIMISTIC_KERNELS_H_
#define ADAPTIDX_CRACKING_OPTIMISTIC_KERNELS_H_

#include <vector>

#include "cracking/cracker_array.h"
#include "storage/types.h"

namespace adaptidx {
namespace optkern {

/// \file Latch-free read kernels for the optimistic (seqlock-validated)
/// piece-read path of ConcurrencyMode::kOptimistic / kAdaptive.
///
/// These loops deliberately read the cracker array while a concurrent crack
/// may be reorganizing it. The caller brackets every call with a piece
/// version check (see the protocol in cracking/piece_map.h) and DISCARDS the
/// result on mismatch, so a torn read is never observable — but the accesses
/// still constitute a data race to ThreadSanitizer. Every kernel is
/// therefore compiled with thread-sanitizer instrumentation disabled
/// (`ADAPTIDX_NO_SANITIZE_THREAD`) and defined out-of-line in
/// optimistic_kernels.cc so it cannot inline into instrumented callers.
/// The bodies are plain scalar loops — free of atomics so the
/// auto-vectorizer can still turn them into SIMD under -O2/-O3.
///
/// All kernels dispatch once on the array layout and then run a tight
/// layout-specialized loop, mirroring the latched bulk operations of
/// CrackerArray.

/// \brief Count of values in [r.lo, r.hi) within positions [b, e).
uint64_t CountFiltered(const CrackerArray& a, Position b, Position e,
                       const ValueRange& r);

/// \brief Positional sum of [b, e).
int64_t SumPositional(const CrackerArray& a, Position b, Position e);

/// \brief Sum of values in [r.lo, r.hi) within [b, e).
int64_t SumFiltered(const CrackerArray& a, Position b, Position e,
                    const ValueRange& r);

/// \brief Min/max of [b, e); requires b < e.
void MinMaxPositional(const CrackerArray& a, Position b, Position e,
                      Value* mn, Value* mx);

/// \brief Min/max of values in [r.lo, r.hi) within [b, e); returns false
/// (outputs untouched) when nothing qualifies.
bool MinMaxFiltered(const CrackerArray& a, Position b, Position e,
                    const ValueRange& r, Value* mn, Value* mx);

/// \brief Appends the rowIDs of [b, e) to `out`.
void CollectRowIds(const CrackerArray& a, Position b, Position e,
                   std::vector<RowId>* out);

/// \brief Appends the rowIDs of elements in [b, e) whose value lies in
/// [r.lo, r.hi) to `out`.
void CollectRowIdsFiltered(const CrackerArray& a, Position b, Position e,
                           const ValueRange& r, std::vector<RowId>* out);

}  // namespace optkern
}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_OPTIMISTIC_KERNELS_H_
