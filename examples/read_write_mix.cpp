/// \file Read-write mix: an order stream updates a column through the
/// differential-file layer (Section 4.2) while analysts keep querying it.
/// Shows the paper's transactional split in action: updates are user
/// transactions under the lock manager; index refinement is a latch-only
/// system transaction that politely steps aside while conflicting user
/// locks exist.
///
///   $ ./build/examples/read_write_mix

#include <cstdio>

#include "core/updatable_index.h"
#include "storage/column.h"

using namespace adaptidx;

int main() {
  constexpr size_t kRows = 500'000;
  LockManager lm;
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  UpdatableIndex orders(Column::UniqueRandom("amount", kRows, 5), config,
                        &lm, "orders/amount");
  std::printf("orders table: %zu rows, cracking index with lock-manager "
              "probe\n\n", orders.num_rows());

  QueryContext ctx;
  ctx.txn_id = 1;

  // 1. Plain analytics: cracks as a side effect.
  uint64_t count = 0;
  (void)orders.RangeCount(ValueRange{100'000, 200'000}, &ctx, &count);
  std::printf("count(amount in [100k,200k))          = %llu   "
              "(refined: %s)\n",
              static_cast<unsigned long long>(count),
              ctx.stats.refinement_skipped ? "no" : "yes");

  // 2. An open user transaction locks a key range it intends to update.
  (void)lm.Acquire(42, "orders/amount/key:150000", LockMode::kX);
  QueryContext ctx2;
  ctx2.txn_id = 2;
  (void)orders.RangeCount(ValueRange{100'000, 200'000}, &ctx2, &count);
  std::printf("same query while txn 42 holds X lock  = %llu   "
              "(refined: %s — system txn forgoes optimization)\n",
              static_cast<unsigned long long>(count),
              ctx2.stats.refinement_skipped ? "no" : "yes");
  lm.ReleaseAll(42);

  // 3. Auto-commit updates through differential files / anti-matter.
  QueryContext uctx;
  uctx.txn_id = 3;
  RowId fresh;
  (void)orders.Insert(150'500, &uctx, &fresh);
  uctx.txn_id = 4;
  (void)orders.Insert(150'501, &uctx);
  std::printf("\ninserted 2 orders -> pending inserts  = %zu\n",
              orders.pending_inserts());

  QueryContext ctx3;
  ctx3.txn_id = 5;
  (void)orders.RangeCount(ValueRange{100'000, 200'000}, &ctx3, &count);
  std::printf("count after inserts                   = %llu   "
              "(base + differentials)\n",
              static_cast<unsigned long long>(count));

  uctx.txn_id = 6;
  (void)orders.Delete(150'500, fresh, &uctx);
  std::printf("deleted one pending order -> pending  = %zu inserts, %zu "
              "anti-matter\n",
              orders.pending_inserts(), orders.pending_deletes());

  // 4. Checkpoint: fold differentials into a fresh base and rebuild.
  (void)orders.Checkpoint();
  QueryContext ctx4;
  ctx4.txn_id = 7;
  (void)orders.RangeCount(ValueRange{100'000, 200'000}, &ctx4, &count);
  std::printf("\nafter checkpoint: rows=%zu pending=0, count = %llu "
              "(index rebuilt, re-cracks on demand)\n",
              orders.num_rows(), static_cast<unsigned long long>(count));
  return 0;
}
