#include "core/strategies.h"

namespace adaptidx {

std::string ToString(RefinementStrategy s) {
  switch (s) {
    case RefinementStrategy::kStandard:
      return "standard";
    case RefinementStrategy::kLazy:
      return "lazy";
    case RefinementStrategy::kActive:
      return "active";
    case RefinementStrategy::kDynamic:
      return "dynamic";
  }
  return "unknown";
}

RefinementPolicy::RefinementPolicy(RefinementStrategy strategy,
                                   size_t sort_piece_threshold,
                                   size_t min_piece_size)
    : strategy_(strategy),
      sort_piece_threshold_(sort_piece_threshold),
      min_piece_size_(min_piece_size) {}

RefinementDirective RefinementPolicy::OnCrack(size_t piece_size) const {
  RefinementDirective d;
  // Coarse-granular floor: pieces at or below the minimum size are sorted
  // instead of split, whatever the strategy says — splitting them further
  // would grow the piece map (and its latch population) without a matching
  // scan saving. Overrides even kLazy's try_only: the floor caps structure
  // growth, which is a space bound, not a contention heuristic.
  if (min_piece_size_ > 0 && piece_size <= min_piece_size_) {
    d.sort_piece = true;
    d.coarse = true;
    return d;
  }
  switch (strategy_) {
    case RefinementStrategy::kStandard:
      break;
    case RefinementStrategy::kLazy:
      d.try_only = true;
      break;
    case RefinementStrategy::kActive:
      d.sort_piece =
          sort_piece_threshold_ > 0 && piece_size <= sort_piece_threshold_;
      break;
    case RefinementStrategy::kDynamic: {
      const double score = ContentionScore();
      if (score >= kHighContention) {
        d.try_only = true;
      } else if (score <= kLowContention) {
        d.sort_piece =
            sort_piece_threshold_ > 0 && piece_size <= sort_piece_threshold_;
      }
      break;
    }
  }
  return d;
}

void RefinementPolicy::OnConflict() {
  // score += (1 - score) / window, in fixed point.
  int64_t cur = score_micros_.load(std::memory_order_relaxed);
  int64_t next;
  do {
    next = cur + static_cast<int64_t>((1e6 - static_cast<double>(cur)) /
                                      kWindow);
  } while (!score_micros_.compare_exchange_weak(cur, next,
                                                std::memory_order_relaxed));
}

void RefinementPolicy::OnSuccess() {
  int64_t cur = score_micros_.load(std::memory_order_relaxed);
  int64_t next;
  do {
    next = cur - static_cast<int64_t>(static_cast<double>(cur) / kWindow);
  } while (!score_micros_.compare_exchange_weak(cur, next,
                                                std::memory_order_relaxed));
}

double RefinementPolicy::ContentionScore() const {
  return static_cast<double>(score_micros_.load(std::memory_order_relaxed)) /
         1e6;
}

}  // namespace adaptidx
