#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace adaptidx {
namespace server {
namespace {

// Deterministic xorshift so the fuzz corpus is identical on every run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : s_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t Next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  uint8_t NextByte() { return static_cast<uint8_t>(Next() & 0xff); }

 private:
  uint64_t s_;
};

Frame MustDecode(const std::string& bytes) {
  Frame f;
  size_t consumed = 0;
  Status s = TryDecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                            bytes.size(), kDefaultMaxFrameBytes, &f,
                            &consumed);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(consumed, bytes.size());
  return f;
}

// ----------------------------------------------------------- frame framing

TEST(ProtocolFrameTest, RoundTripsTypeIdAndPayload) {
  const std::string payload = "hello payload";
  const std::string bytes =
      EncodeFrame(FrameType::kQuery, 0xdeadbeefcafe1234ULL, payload);
  Frame f = MustDecode(bytes);
  EXPECT_EQ(f.type, FrameType::kQuery);
  EXPECT_EQ(f.request_id, 0xdeadbeefcafe1234ULL);
  EXPECT_EQ(f.payload, payload);
}

TEST(ProtocolFrameTest, EveryPrefixAsksForMoreBytes) {
  const std::string bytes = EncodeFrame(FrameType::kStats, 7, "abc");
  // Feeding any strict prefix must yield OK + consumed == 0 (need more),
  // never an error and never a phantom frame.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame f;
    size_t consumed = 99;
    Status s = TryDecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                              cut, kDefaultMaxFrameBytes, &f, &consumed);
    EXPECT_TRUE(s.ok()) << "cut=" << cut;
    EXPECT_EQ(consumed, 0u) << "cut=" << cut;
  }
}

TEST(ProtocolFrameTest, LengthBelowOverheadIsCorruption) {
  // length = 3 < kFrameOverhead: cannot even hold type + request id.
  std::string bytes;
  bytes.push_back(3);
  bytes.append(3, '\0');
  bytes.append(16, 'x');  // plenty of trailing bytes: still rejected
  Frame f;
  size_t consumed = 0;
  Status s = TryDecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                            bytes.size(), kDefaultMaxFrameBytes, &f,
                            &consumed);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(ProtocolFrameTest, LengthAboveCapRejectedBeforeBufferingPayload) {
  // A hostile length word claiming ~4 GiB with only 4 bytes on the wire:
  // the cap check must fire immediately (OK-need-more would let the peer
  // hold a connection hostage; reserving would hand it an allocation).
  std::string bytes;
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(0xff));
  Frame f;
  size_t consumed = 0;
  Status s = TryDecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                            bytes.size(), kDefaultMaxFrameBytes, &f,
                            &consumed);
  EXPECT_TRUE(s.IsCorruption());
  // Same length under a tiny custom cap.
  const std::string ok = EncodeFrame(FrameType::kStats, 1, std::string(64, 'p'));
  s = TryDecodeFrame(reinterpret_cast<const uint8_t*>(ok.data()), ok.size(),
                     /*max_frame_bytes=*/32, &f, &consumed);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(ProtocolFrameTest, UnknownTypeTagIsCorruption) {
  std::string bytes = EncodeFrame(FrameType::kQuery, 1, "");
  bytes[kFrameLengthBytes] = 0x42;  // no such request tag
  Frame f;
  size_t consumed = 0;
  Status s = TryDecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                            bytes.size(), kDefaultMaxFrameBytes, &f,
                            &consumed);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(ProtocolFrameTest, PipelinedFramesDecodeOneAtATime) {
  const std::string a = EncodeFrame(FrameType::kQuery, 1, "aa");
  const std::string b = EncodeFrame(FrameType::kInsert, 2, "bbbb");
  std::string stream = a + b;
  Frame f;
  size_t consumed = 0;
  ASSERT_TRUE(TryDecodeFrame(reinterpret_cast<const uint8_t*>(stream.data()),
                             stream.size(), kDefaultMaxFrameBytes, &f,
                             &consumed)
                  .ok());
  EXPECT_EQ(consumed, a.size());
  EXPECT_EQ(f.request_id, 1u);
  stream.erase(0, consumed);
  ASSERT_TRUE(TryDecodeFrame(reinterpret_cast<const uint8_t*>(stream.data()),
                             stream.size(), kDefaultMaxFrameBytes, &f,
                             &consumed)
                  .ok());
  EXPECT_EQ(consumed, b.size());
  EXPECT_EQ(f.request_id, 2u);
  EXPECT_EQ(f.type, FrameType::kInsert);
}

// -------------------------------------------------------- payload round-trips

TEST(ProtocolPayloadTest, OpenSessionRoundTrip) {
  OpenSessionReq req;
  req.flags = OpenSessionReq::kFlagSnapshotReads;
  req.client_id = 77;
  OpenSessionReq back;
  ASSERT_TRUE(back.Decode(req.Encode()).ok());
  EXPECT_EQ(back.flags, req.flags);
  EXPECT_EQ(back.client_id, 77u);

  OpenOkMsg ok;
  ok.session_id = 123456;
  OpenOkMsg ok_back;
  ASSERT_TRUE(ok_back.Decode(ok.Encode()).ok());
  EXPECT_EQ(ok_back.session_id, 123456u);
}

TEST(ProtocolPayloadTest, QueryRoundTripAllServableKinds) {
  for (QueryKind kind : {QueryKind::kCount, QueryKind::kSum, QueryKind::kRowIds,
                         QueryKind::kMinMax}) {
    QueryReq req{kind, -500, 12345};
    QueryReq back;
    ASSERT_TRUE(back.Decode(req.Encode()).ok());
    EXPECT_EQ(back.kind, kind);
    EXPECT_EQ(back.lo, -500);
    EXPECT_EQ(back.hi, 12345);
    Query q = back.ToQuery();
    EXPECT_EQ(q.kind, kind);
    EXPECT_EQ(q.range.lo, -500);
    EXPECT_EQ(q.range.hi, 12345);
  }
}

TEST(ProtocolPayloadTest, SumOtherKindRejectedOnTheWire) {
  QueryReq req{QueryKind::kSumOther, 0, 10};
  QueryReq back;
  EXPECT_TRUE(back.Decode(req.Encode()).IsInvalidArgument());
}

TEST(ProtocolPayloadTest, BatchRoundTripAndForgedCount) {
  BatchReq req;
  req.queries.push_back({QueryKind::kCount, 1, 2});
  req.queries.push_back({QueryKind::kSum, -10, 10});
  const std::string bytes = req.Encode();
  BatchReq back;
  ASSERT_TRUE(back.Decode(bytes).ok());
  ASSERT_EQ(back.queries.size(), 2u);
  EXPECT_EQ(back.queries[1].kind, QueryKind::kSum);
  EXPECT_EQ(back.queries[1].lo, -10);
  // Forge the element count to a value the payload cannot hold: rejected
  // (before any reserve) instead of over-reading.
  std::string forged = bytes;
  forged[0] = static_cast<char>(0xff);
  forged[1] = static_cast<char>(0xff);
  EXPECT_TRUE(back.Decode(forged).IsInvalidArgument());
}

TEST(ProtocolPayloadTest, UpdateRoundTrips) {
  InsertReq ins;
  ins.value = -987654321;
  InsertReq ins_back;
  ASSERT_TRUE(ins_back.Decode(ins.Encode()).ok());
  EXPECT_EQ(ins_back.value, -987654321);

  DeleteReq del;
  del.value = 42;
  del.row_id = 4242;
  DeleteReq del_back;
  ASSERT_TRUE(del_back.Decode(del.Encode()).ok());
  EXPECT_EQ(del_back.value, 42);
  EXPECT_EQ(del_back.row_id, 4242u);
}

TEST(ProtocolPayloadTest, ResultRoundTripWithRowIds) {
  ResultMsg m;
  m.status_code = StatusCodeToWire(Status::OK());
  m.kind = static_cast<uint8_t>(QueryKind::kRowIds);
  m.count = 3;
  m.row_ids = {10, 20, 30};
  ResultMsg back;
  ASSERT_TRUE(back.Decode(m.Encode()).ok());
  EXPECT_TRUE(back.ToStatus().ok());
  EXPECT_EQ(back.count, 3u);
  EXPECT_EQ(back.row_ids, (std::vector<uint32_t>{10, 20, 30}));
}

TEST(ProtocolPayloadTest, ResultForgedRowIdCountFailsBeforeReserve) {
  ResultMsg m;  // zero row ids: the trailing u32 of the encoding is the count
  std::string bytes = m.Encode();
  for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xff);
  }
  ResultMsg back;
  EXPECT_TRUE(back.Decode(bytes).IsInvalidArgument());
}

TEST(ProtocolPayloadTest, ResultStatusBridgeRoundTripsEveryCode) {
  for (Status s : {Status::OK(), Status::NotFound("a"),
                   Status::InvalidArgument("b"), Status::Busy("c"),
                   Status::Conflict("d"), Status::Aborted("e"),
                   Status::TimedOut("f"), Status::NotSupported("g"),
                   Status::Corruption("h")}) {
    ResultMsg m = ResultMsg::FromStatus(s);
    ResultMsg back;
    ASSERT_TRUE(back.Decode(m.Encode()).ok());
    Status lifted = back.ToStatus();
    EXPECT_EQ(lifted.code(), s.code());
    EXPECT_EQ(lifted.message(), s.message());
  }
}

TEST(ProtocolPayloadTest, BatchResultRoundTrip) {
  BatchResultMsg batch;
  batch.results.push_back(ResultMsg::FromStatus(Status::TimedOut("late")));
  ResultMsg ok;
  ok.kind = static_cast<uint8_t>(QueryKind::kSum);
  ok.sum = -5;
  batch.results.push_back(ok);
  BatchResultMsg back;
  ASSERT_TRUE(back.Decode(batch.Encode()).ok());
  ASSERT_EQ(back.results.size(), 2u);
  EXPECT_TRUE(back.results[0].ToStatus().IsTimedOut());
  EXPECT_EQ(back.results[1].sum, -5);
}

TEST(ProtocolPayloadTest, StatsRoundTripAndFind) {
  StatsMsg stats;
  stats.entries.emplace_back("admission.shed_total", 9);
  stats.entries.emplace_back("index.num_rows", 100000);
  StatsMsg back;
  ASSERT_TRUE(back.Decode(stats.Encode()).ok());
  uint64_t v = 0;
  ASSERT_TRUE(back.Find("index.num_rows", &v));
  EXPECT_EQ(v, 100000u);
  EXPECT_FALSE(back.Find("no.such.key", &v));
}

TEST(ProtocolPayloadTest, BusyRoundTrip) {
  BusyMsg busy;
  busy.overload_state = 2;
  busy.shed_total = 31337;
  BusyMsg back;
  ASSERT_TRUE(back.Decode(busy.Encode()).ok());
  EXPECT_EQ(back.overload_state, 2);
  EXPECT_EQ(back.shed_total, 31337u);
}

TEST(ProtocolPayloadTest, TrailingGarbageRejectedEverywhere) {
  // Strict decode: every payload decoder requires exhaustion, so one extra
  // byte after a perfectly valid encoding is malformed.
  EXPECT_TRUE(OpenSessionReq().Decode(OpenSessionReq().Encode() + "x")
                  .IsInvalidArgument());
  QueryReq q{QueryKind::kCount, 0, 1};
  QueryReq qb;
  EXPECT_TRUE(qb.Decode(q.Encode() + "x").IsInvalidArgument());
  InsertReq ib;
  EXPECT_TRUE(ib.Decode(InsertReq().Encode() + "x").IsInvalidArgument());
  ResultMsg rb;
  EXPECT_TRUE(rb.Decode(ResultMsg().Encode() + "x").IsInvalidArgument());
  StatsMsg sb;
  EXPECT_TRUE(sb.Decode(StatsMsg().Encode() + "x").IsInvalidArgument());
}

TEST(ProtocolPayloadTest, TruncationsRejectedEverywhere) {
  // Every strict prefix of every payload encoding must be rejected by that
  // payload's own decoder — never a crash, never a partial accept.
  using DecodeFn = Status (*)(const std::string&);
  const std::vector<std::pair<std::string, DecodeFn>> cases = {
      {[] {
         OpenSessionReq r;
         r.client_id = 9;
         return r.Encode();
       }(),
       +[](const std::string& p) { return OpenSessionReq().Decode(p); }},
      {QueryReq{QueryKind::kMinMax, -1, 1}.Encode(),
       +[](const std::string& p) { return QueryReq().Decode(p); }},
      {[] {
         BatchReq b;
         b.queries.push_back({QueryKind::kCount, 0, 5});
         return b.Encode();
       }(),
       +[](const std::string& p) { return BatchReq().Decode(p); }},
      {[] {
         ResultMsg m;
         m.message = "boom";
         m.row_ids = {1, 2};
         return m.Encode();
       }(),
       +[](const std::string& p) { return ResultMsg().Decode(p); }},
      {[] {
         StatsMsg s;
         s.entries.emplace_back("k", 1);
         return s.Encode();
       }(),
       +[](const std::string& p) { return StatsMsg().Decode(p); }},
      {[] {
         BusyMsg b;
         b.shed_total = 5;
         return b.Encode();
       }(),
       +[](const std::string& p) { return BusyMsg().Decode(p); }},
  };
  for (const auto& [bytes, decode] : cases) {
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_TRUE(decode(bytes.substr(0, cut)).IsInvalidArgument())
          << "cut=" << cut << " of " << bytes.size();
    }
  }
}

// ----------------------------------------------------------------- fuzzing

TEST(ProtocolFuzzTest, RandomBytesNeverCrashTheFrameDecoder) {
  Rng rng(2026);
  for (int round = 0; round < 2000; ++round) {
    const size_t len = rng.Next() % 64;
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextByte()));
    }
    Frame f;
    size_t consumed = 0;
    Status s = TryDecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                              bytes.size(), kDefaultMaxFrameBytes, &f,
                              &consumed);
    // Contract: OK-with-progress, OK-need-more, or a clean error; consumed
    // never exceeds what was offered.
    EXPECT_LE(consumed, bytes.size());
    if (!s.ok()) EXPECT_EQ(consumed, 0u);
  }
}

TEST(ProtocolFuzzTest, BitFlippedFramesNeverCrashPayloadDecoders) {
  Rng rng(4052);
  BatchReq batch;
  batch.queries.push_back({QueryKind::kCount, 5, 10});
  batch.queries.push_back({QueryKind::kRowIds, -3, 3});
  const std::string seeds[] = {
      OpenSessionReq().Encode(),     QueryReq{QueryKind::kSum, 1, 9}.Encode(),
      batch.Encode(),                InsertReq().Encode(),
      DeleteReq().Encode(),          ResultMsg::FromStatus(Status::Busy("x")).Encode(),
      StatsMsg().Encode(),           BusyMsg().Encode(),
  };
  for (int round = 0; round < 500; ++round) {
    for (const auto& seed : seeds) {
      std::string mutated = seed;
      if (mutated.empty()) continue;
      const int flips = 1 + static_cast<int>(rng.Next() % 4);
      for (int i = 0; i < flips; ++i) {
        mutated[rng.Next() % mutated.size()] ^=
            static_cast<char>(1u << (rng.Next() % 8));
      }
      // Feed the mutation to every decoder: outcomes are OK or a clean
      // InvalidArgument, never a crash or over-read.
      OpenSessionReq a;
      a.Decode(mutated);
      QueryReq q;
      q.Decode(mutated);
      BatchReq b;
      b.Decode(mutated);
      InsertReq ins;
      ins.Decode(mutated);
      DeleteReq del;
      del.Decode(mutated);
      ResultMsg m;
      m.Decode(mutated);
      BatchResultMsg bm;
      bm.Decode(mutated);
      StatsMsg s;
      s.Decode(mutated);
      BusyMsg busy;
      busy.Decode(mutated);
    }
  }
}

}  // namespace
}  // namespace server
}  // namespace adaptidx
