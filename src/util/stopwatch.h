#ifndef ADAPTIDX_UTIL_STOPWATCH_H_
#define ADAPTIDX_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace adaptidx {

/// \brief Returns a monotonic timestamp in nanoseconds.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief Monotonic stopwatch used for all timing in benchmarks and
/// per-query instrumentation.
class StopWatch {
 public:
  StopWatch() : start_(NowNanos()) {}

  /// \brief Resets the start point to now.
  void Reset() { start_ = NowNanos(); }

  /// \brief Nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const { return NowNanos() - start_; }

  /// \brief Elapsed time in microseconds.
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }

  /// \brief Elapsed time in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// \brief Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  int64_t start_;
};

/// \brief Accumulates elapsed nanoseconds into a target counter on scope
/// exit. Used to attribute wait time and crack time to per-query stats
/// without cluttering the control flow.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) *sink_ += NowNanos() - start_;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  int64_t start_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_UTIL_STOPWATCH_H_
