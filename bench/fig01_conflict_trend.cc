/// \file Reproduces the right-hand trend of Figure 1: the number of
/// concurrency conflicts per query position decreases as the workload
/// sequence evolves, because piece-grained latches get ever finer as the
/// index refines itself.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 1000000);
  const size_t num_queries = EnvSize("AI_BENCH_QUERIES", 1024);
  const size_t clients = EnvSize("AI_BENCH_FIG01_CLIENTS", 8);
  PrintHeader("Figure 1 (right): concurrency conflicts over the sequence",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=1% type=Q2(sum) clients=" +
                  std::to_string(clients) + " piece latches");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.01;
  wopts.type = QueryType::kSum;
  wopts.seed = 11;
  const auto queries = gen.Generate(wopts);

  IndexConfig config;
  config.method = IndexMethod::kCrack;
  // batch_size 1 reproduces the paper's synchronous clients (see fig15).
  RunResult r = RunWorkload(column, config, queries, clients,
                            /*record_per_query=*/true, /*batch_size=*/1);

  // Bucket the completion-ordered sequence and report conflicts per bucket.
  const size_t buckets = 16;
  const size_t per = r.records.size() / buckets;
  std::printf("\n%-22s %12s %14s\n", "query-sequence bucket", "conflicts",
              "wait (msecs)");
  uint64_t first_bucket = 0;
  uint64_t last_bucket = 0;
  for (size_t b = 0; b < buckets; ++b) {
    const StatTotals t = SumStats(r.records, b * per, (b + 1) * per);
    if (b == 0) first_bucket = t.conflicts;
    if (b == buckets - 1) last_bucket = t.conflicts;
    std::printf("[%5zu, %5zu)        %12llu %14.3f\n", b * per, (b + 1) * per,
                static_cast<unsigned long long>(t.conflicts),
                static_cast<double>(t.wait_ns) / 1e6);
  }
  std::printf("\ntotal conflicts: %llu, total wait: %.3f ms\n",
              static_cast<unsigned long long>(r.total_conflicts),
              static_cast<double>(r.total_wait_ns) / 1e6);
  std::printf(
      "paper-shape check: conflicts adaptively decrease (last bucket <= "
      "first bucket): %s\n",
      last_bucket <= first_bucket ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
