#include "util/thread_pool.h"

#include <algorithm>

namespace adaptidx {

size_t ThreadPool::DefaultConcurrency(size_t reserve_threads) {
  const size_t hw = std::thread::hardware_concurrency();
  if (hw <= reserve_threads + 1) return 1;
  return hw - reserve_threads;
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> guard(mu_);
  idle_cv_.wait(guard, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> guard(mu_);
      work_cv_.wait(guard, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> guard(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace adaptidx
