#ifndef ADAPTIDX_ENGINE_PLAN_H_
#define ADAPTIDX_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"

namespace adaptidx {

/// \brief Operator-at-a-time plan execution in the MonetDB style of
/// Figure 6: "the system accesses one column at a time in a bulk processing
/// mode. It first evaluates the complete selection over one column. Then,
/// given a set of qualifying IDs (positions), it fetches only the required
/// values from another column before computing the complete aggregation in
/// one go."
///
/// The first range predicate runs through the adaptive index of its column
/// (cracking it as a side effect and holding latches only for the duration
/// of that one operator — the column-store property Section 5.1 leans on);
/// every further predicate is a bulk positional filter over the candidate
/// ID list; aggregations positionally fetch their column.
///
/// Example — `select sum(C) from R where 10 <= A < 90 and 5 <= B < 50`:
///
/// ```cpp
/// int64_t sum = 0;
/// Status s = PlanBuilder(&db, "R")
///                .SelectRange("A", 10, 90, config)   // adaptive index
///                .FilterRange("B", 5, 50)            // positional filter
///                .Sum("C", &ctx, &sum);
/// ```
///
/// A builder is single-use and not thread-safe; concurrency happens across
/// plans (each holding only short per-operator latches), not within one.
class PlanBuilder {
 public:
  /// \brief Starts a plan over `table`; errors surface at execution time.
  PlanBuilder(Database* db, std::string table);

  /// \brief Starts a plan bound to a session: the session's pinned
  /// IndexConfig becomes the default for `SelectRange`, and its
  /// client/txn/session identity is stamped onto the execution context.
  /// The session must be a database session (not `Session::OnIndex`).
  PlanBuilder(Session* session, std::string table);

  /// \brief The selection operator: qualifying rowIDs of
  /// `lo <= column < hi` via the (adaptive) index configured by `config`.
  /// Must be the first operator of the plan.
  PlanBuilder& SelectRange(const std::string& column, Value lo, Value hi,
                           const IndexConfig& config);

  /// \brief Session-bound variant using the session's pinned IndexConfig;
  /// only valid on a session-constructed builder.
  PlanBuilder& SelectRange(const std::string& column, Value lo, Value hi);

  /// \brief Bulk positional refinement: keeps candidates whose `column`
  /// value lies in [lo, hi). May be chained arbitrarily.
  PlanBuilder& FilterRange(const std::string& column, Value lo, Value hi);

  /// \brief Terminal operators (each consumes the candidate list).
  Status Count(QueryContext* ctx, uint64_t* count);
  Status Sum(const std::string& column, QueryContext* ctx, int64_t* sum);
  /// \brief Materializes the values of `column` for all candidates, in
  /// candidate order.
  Status Collect(const std::string& column, QueryContext* ctx,
                 std::vector<Value>* values);
  /// \brief Returns the qualifying rowIDs themselves.
  Status RowIds(QueryContext* ctx, std::vector<RowId>* row_ids);

 private:
  struct FilterStep {
    std::string column;
    Value lo;
    Value hi;
  };

  /// Runs select + filters, leaving candidates in `ids_`. Idempotent per
  /// builder (terminals may only be called once).
  Status Execute(QueryContext* ctx);

  Database* db_;
  Session* session_ = nullptr;  ///< non-null for session-bound plans
  std::string table_;
  bool has_select_ = false;
  std::string select_column_;
  Value select_lo_ = 0;
  Value select_hi_ = 0;
  IndexConfig select_config_;
  std::vector<FilterStep> filters_;
  Status deferred_error_;
  std::vector<RowId> ids_;
  bool executed_ = false;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_PLAN_H_
