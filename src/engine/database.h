#ifndef ADAPTIDX_ENGINE_DATABASE_H_
#define ADAPTIDX_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/index_factory.h"
#include "engine/operators.h"
#include "lock/lock_manager.h"
#include "storage/catalog.h"

namespace adaptidx {

/// \brief Small embedded-database facade tying the catalog, adaptive
/// indexes, and the lock manager together; this is the public entry point
/// the examples use.
///
/// Index life cycle follows Section 5.3: query execution latches the catalog
/// (the global structure) only to locate or register the index for a column,
/// then all further coordination happens on the index's own latches.
class Database {
 public:
  Database() = default;

  /// \brief Creates a table from a set of aligned columns.
  Status CreateTable(const std::string& name, std::vector<Column> columns);

  Table* GetTable(const std::string& name) {
    return catalog_.GetTable(name);
  }

  /// \brief Returns the shared adaptive index for `table`.`column` under
  /// `config`, creating it on first use. Distinct methods on the same
  /// column coexist (distinct catalog entries), which is how benchmarks
  /// compare methods on identical data.
  std::shared_ptr<AdaptiveIndex> GetOrCreateIndex(const std::string& table,
                                                  const std::string& column,
                                                  const IndexConfig& config);

  /// \brief Drops the index entry; adaptive indexes "can be dropped at any
  /// time" (Section 4.2).
  bool DropIndex(const std::string& table, const std::string& column,
                 const IndexConfig& config);

  /// \brief `select count(*) from table where lo <= column < hi`.
  Status Count(const std::string& table, const std::string& column, Value lo,
               Value hi, const IndexConfig& config, uint64_t* out,
               QueryStats* stats = nullptr);

  /// \brief `select sum(column) from table where lo <= column < hi`.
  Status Sum(const std::string& table, const std::string& column, Value lo,
             Value hi, const IndexConfig& config, int64_t* out,
             QueryStats* stats = nullptr);

  /// \brief `select sum(agg_column) from table where lo <= sel_column < hi`
  /// — the two-column plan of Figure 6.
  Status SumOther(const std::string& table, const std::string& sel_column,
                  const std::string& agg_column, Value lo, Value hi,
                  const IndexConfig& config, int64_t* out,
                  QueryStats* stats = nullptr);

  Catalog* catalog() { return &catalog_; }
  LockManager* lock_manager() { return &lock_manager_; }

 private:
  static std::string IndexKey(const std::string& table,
                              const std::string& column,
                              const IndexConfig& config);

  Catalog catalog_;
  LockManager lock_manager_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_DATABASE_H_
