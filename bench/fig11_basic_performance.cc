/// \file Reproduces Figure 11: basic performance of scan vs. full index
/// (sort) vs. database cracking for 10 sequential range queries of 10%
/// selectivity over a column of unique random integers.
///
/// Panel (a): per-query response time. Panel (b): running average.
/// Expected shape: scan is flat; sort pays a huge first query then is
/// fastest; cracking starts near scan cost and improves with every query,
/// with its running average dropping below scan within ~8 queries.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 4000000);
  const size_t num_queries = EnvSize("AI_BENCH_FIG11_QUERIES", 10);
  PrintHeader("Figure 11: basic performance, sequential execution",
              "rows=" + std::to_string(rows) +
                  " queries=" + std::to_string(num_queries) +
                  " selectivity=10% type=Q1(count) clients=1");

  Column column = MakeUniqueRandomColumn(rows);
  WorkloadGenerator gen(0, static_cast<Value>(rows));
  WorkloadOptions wopts;
  wopts.num_queries = num_queries;
  wopts.selectivity = 0.10;
  wopts.type = QueryType::kCount;
  wopts.seed = 2012;
  const auto queries = gen.Generate(wopts);

  const IndexMethod methods[] = {IndexMethod::kScan, IndexMethod::kSort,
                                 IndexMethod::kCrack};

  std::vector<std::vector<double>> per_query(3);
  for (int m = 0; m < 3; ++m) {
    IndexConfig config;
    config.method = methods[m];
    auto index = MakeIndex(&column, config);
    for (const auto& q : queries) {
      QueryContext ctx;
      uint64_t count = 0;
      StopWatch sw;
      (void)index->RangeCount(ValueRange{q.lo, q.hi}, &ctx, &count);
      per_query[m].push_back(sw.ElapsedMillis());
    }
  }

  std::printf("\n(a) Response time per query (ms)\n");
  std::printf("%-6s %12s %12s %12s\n", "query", "scan", "sort", "crack");
  for (size_t i = 0; i < num_queries; ++i) {
    std::printf("%-6zu %12.3f %12.3f %12.3f\n", i + 1, per_query[0][i],
                per_query[1][i], per_query[2][i]);
  }

  std::printf("\n(b) Running average response time (ms)\n");
  std::printf("%-6s %12s %12s %12s\n", "query", "scan", "sort", "crack");
  std::vector<double> acc(3, 0.0);
  for (size_t i = 0; i < num_queries; ++i) {
    for (int m = 0; m < 3; ++m) acc[m] += per_query[m][i];
    std::printf("%-6zu %12.3f %12.3f %12.3f\n", i + 1,
                acc[0] / static_cast<double>(i + 1),
                acc[1] / static_cast<double>(i + 1),
                acc[2] / static_cast<double>(i + 1));
  }

  // The paper's observation: after a few queries, cracking's running
  // average beats scan's, while sort is still amortizing its first query.
  std::printf(
      "\npaper-shape check: crack avg (%.3f ms) < scan avg (%.3f ms): %s\n",
      acc[2] / static_cast<double>(num_queries),
      acc[0] / static_cast<double>(num_queries),
      acc[2] < acc[0] ? "yes" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
