#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "test_util.h"
#include "util/rng.h"

namespace adaptidx {
namespace server {
namespace {

std::unique_ptr<Server> StartServer(Column base, ServerOptions opts = {}) {
  auto server = std::make_unique<Server>(std::move(base), std::move(opts));
  EXPECT_TRUE(server->Start().ok());
  return server;
}

Client ConnectTo(const Server& server) {
  Client client;
  EXPECT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  return client;
}

// ------------------------------------------------------------ basic traffic

TEST(ServerBasicTest, OpenQueryStatsCloseRoundTrip) {
  const size_t kRows = 5000;
  Column base = Column::UniqueRandom("A", kRows, 71);
  RangeOracle oracle(base);
  auto server = StartServer(std::move(base));

  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.OpenSession().ok());
  EXPECT_GT(client.session_id(), 0u);

  uint64_t count = 0;
  ASSERT_TRUE(client.Count(100, 2500, &count).ok());
  EXPECT_EQ(count, oracle.Count(100, 2500));

  int64_t sum = 0;
  ASSERT_TRUE(client.Sum(100, 2500, &sum).ok());
  EXPECT_EQ(sum, oracle.Sum(100, 2500));

  Value mn = 0, mx = 0;
  bool found = false;
  ASSERT_TRUE(client.MinMax(1000, 1200, &mn, &mx, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(mn, 1000);
  EXPECT_EQ(mx, 1199);

  std::vector<RowId> ids;
  ASSERT_TRUE(client.RowIds(42, 99, &ids).ok());
  EXPECT_TRUE(oracle.CheckRowIds(42, 99, ids));

  // Batch: one admission unit, per-query results in submission order.
  std::vector<QueryReq> batch = {{QueryKind::kCount, 0, 1000},
                                 {QueryKind::kSum, 500, 700},
                                 {QueryKind::kCount, 4000, 6000}};
  std::vector<ResultMsg> results;
  ASSERT_TRUE(client.Batch(batch, &results).ok());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].count, oracle.Count(0, 1000));
  EXPECT_EQ(results[1].sum, oracle.Sum(500, 700));
  EXPECT_EQ(results[2].count, oracle.Count(4000, 6000));

  // STATS: the whole concurrency stack observable over the wire.
  StatsMsg stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  uint64_t v = 0;
  EXPECT_TRUE(stats.Find("admission.shed_total", &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(stats.Find("index.num_rows", &v));
  EXPECT_EQ(v, kRows);
  ASSERT_TRUE(stats.Find("server.connections", &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(stats.Find("session.queries_submitted", &v));
  EXPECT_GE(v, 6u);
  EXPECT_TRUE(stats.Find("admission.overload_state", &v));
  EXPECT_EQ(v, static_cast<uint64_t>(OverloadState::kNormal));
  EXPECT_TRUE(stats.Find("index.base.read_acquires", &v));
  EXPECT_TRUE(stats.Find("index.side.write_acquires", &v));

  EXPECT_TRUE(client.CloseSession().ok());
  server->Stop();
}

TEST(ServerBasicTest, InsertDeleteVisibleThroughQueries) {
  auto server = StartServer(Column::UniqueRandom("A", 1000, 72));
  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.OpenSession().ok());

  RowId row_id = 0;
  ASSERT_TRUE(client.Insert(5000, &row_id).ok());
  EXPECT_GE(row_id, 1000u);  // appended after the base rows
  EXPECT_EQ(server->index()->num_rows(), 1001u);

  uint64_t count = 0;
  ASSERT_TRUE(client.Count(5000, 5001, &count).ok());
  EXPECT_EQ(count, 1u);

  ASSERT_TRUE(client.Delete(5000, row_id).ok());
  ASSERT_TRUE(client.Count(5000, 5001, &count).ok());
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(server->index()->num_rows(), 1000u);
  EXPECT_GE(server->index()->commit_epoch(), 2u);
  server->Stop();
}

// --------------------------------------------------------- protocol breaches

TEST(ServerProtocolTest, QueryBeforeOpenSessionIsARejectedBreach) {
  auto server = StartServer(Column::UniqueRandom("A", 100, 73));
  Client client = ConnectTo(*server);
  uint64_t count = 0;
  Status s = client.Count(0, 10, &count);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_FALSE(client.connected());  // breach closed the connection
  EXPECT_GE(server->protocol_errors(), 1u);
  server->Stop();
}

TEST(ServerProtocolTest, GarbageAndTruncatedFramesCloseCleanly) {
  auto server = StartServer(Column::UniqueRandom("A", 100, 74));

  {
    // Hostile length word (~4 GiB claim): ERROR frame, then close.
    Client client = ConnectTo(*server);
    const char hostile[] = {'\xff', '\xff', '\xff', '\xff', 'j', 'u', 'n', 'k'};
    ASSERT_TRUE(client.SendRaw(hostile, sizeof(hostile)).ok());
    Frame f;
    Status s = client.ReadFrame(&f);
    if (s.ok()) {
      EXPECT_EQ(f.type, FrameType::kError);
      EXPECT_TRUE(client.ReadFrame(&f).IsNotFound());  // then EOF
    }
  }
  {
    // Valid header, garbage payload bytes for the declared type.
    Client client = ConnectTo(*server);
    const std::string bad = EncodeFrame(FrameType::kOpenSession, 1, "zz");
    ASSERT_TRUE(client.SendRaw(bad.data(), bad.size()).ok());
    Frame f;
    Status s = client.ReadFrame(&f);
    if (s.ok()) EXPECT_EQ(f.type, FrameType::kError);
  }
  {
    // Truncated frame then abrupt client close: the server must just drop
    // the connection, not stall or crash.
    Client client = ConnectTo(*server);
    const std::string partial =
        EncodeFrame(FrameType::kQuery, 2, std::string(17, 'q')).substr(0, 9);
    ASSERT_TRUE(client.SendRaw(partial.data(), partial.size()).ok());
    client.Close();
  }

  EXPECT_GE(server->protocol_errors(), 2u);
  // The server survived all three abuses: a fresh client still works.
  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.OpenSession().ok());
  uint64_t count = 0;
  ASSERT_TRUE(client.Count(0, 100, &count).ok());
  EXPECT_EQ(count, 100u);
  server->Stop();
}

TEST(ServerProtocolTest, ResponseTagSentToServerIsABreach) {
  auto server = StartServer(Column::UniqueRandom("A", 100, 75));
  Client client = ConnectTo(*server);
  const std::string bad = EncodeFrame(FrameType::kResult, 1, "");
  ASSERT_TRUE(client.SendRaw(bad.data(), bad.size()).ok());
  Frame f;
  Status s = client.ReadFrame(&f);
  if (s.ok()) EXPECT_EQ(f.type, FrameType::kError);
  server->Stop();
}

// ------------------------------------------------------------------ overload

TEST(ServerOverloadTest, ShedsWithServerBusyInsteadOfQueueGrowth) {
  // A deliberately tiny server: one engine thread and a global in-flight
  // cap of 1, fed 32 pipelined queries over a column large enough that the
  // first crack is still running while the rest of the burst arrives. The
  // excess must come back SERVER_BUSY immediately — not queue behind the
  // engine.
  ServerOptions opts;
  opts.engine_threads = 1;
  opts.completion_threads = 2;
  opts.admission.global_inflight = 1;
  opts.admission.per_connection_inflight = 1;
  auto server = StartServer(Column::UniqueRandom("A", 1000000, 76), opts);

  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.OpenSession().ok());

  const int kBurst = 32;
  std::string burst;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    QueryReq q{QueryKind::kCount, i * 1000, i * 1000 + 500};
    ids.push_back(client.NextRequestId());
    burst += EncodeFrame(FrameType::kQuery, ids.back(), q.Encode());
  }
  ASSERT_TRUE(client.SendRaw(burst.data(), burst.size()).ok());

  int ok_responses = 0;
  int busy_responses = 0;
  uint64_t max_busy_shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    Frame f;
    ASSERT_TRUE(client.ReadFrame(&f).ok());
    if (f.type == FrameType::kServerBusy) {
      ++busy_responses;
      BusyMsg busy;
      ASSERT_TRUE(busy.Decode(f.payload).ok());
      max_busy_shed = std::max(max_busy_shed, busy.shed_total);
    } else {
      ASSERT_EQ(f.type, FrameType::kResult);
      ResultMsg m;
      ASSERT_TRUE(m.Decode(f.payload).ok());
      EXPECT_TRUE(m.ToStatus().ok());
      ++ok_responses;
    }
  }
  // Every request was answered — shed or served, never silently queued.
  EXPECT_EQ(ok_responses + busy_responses, kBurst);
  EXPECT_GE(ok_responses, 1);
  EXPECT_GE(busy_responses, 1);
  EXPECT_GE(max_busy_shed, static_cast<uint64_t>(busy_responses));

  // The shed total is visible over the wire via STATS.
  StatsMsg stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  uint64_t shed = 0;
  ASSERT_TRUE(stats.Find("admission.shed_total", &shed));
  EXPECT_GE(shed, static_cast<uint64_t>(busy_responses));
  uint64_t in_flight = 0;
  ASSERT_TRUE(stats.Find("admission.global_in_flight", &in_flight));
  EXPECT_LE(in_flight, 1u);  // the cap held throughout

  EXPECT_EQ(server->admission().shed_total(), shed);
  server->Stop();
}

// ----------------------------------------------------------- concurrent e2e

/// Eight concurrent clients issue mixed count/sum/minmax/rowids/insert/
/// delete traffic. Base-range queries are checked against the immutable
/// base oracle; every client's updates live in a private value range
/// checked against its own local bookkeeping — so every single response is
/// verified without cross-client coordination.
TEST(ServerE2eTest, ConcurrentMixedTrafficMatchesOracle) {
  const size_t kRows = 20000;
  const int kClients = 8;
  const int kOpsPerClient = 150;
  const Value kPrivateBase = static_cast<Value>(kRows);
  const Value kPrivateSpan = 10000;

  Column base = Column::UniqueRandom("A", kRows, 77);
  RangeOracle oracle(base);
  ServerOptions opts;
  opts.engine_threads = 4;
  auto server = StartServer(std::move(base), opts);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server->port()).ok() ||
          !client.OpenSession(/*snapshot_reads=*/false,
                              /*client_id=*/100 + c)
               .ok()) {
        ++failures;
        return;
      }
      const Value lo_bound = kPrivateBase + c * kPrivateSpan;
      const Value hi_bound = lo_bound + kPrivateSpan;
      std::map<Value, RowId> live;  // my inserted tuples still alive
      Rng rng(900 + c);
      Value next_value = lo_bound;
      for (int op = 0; op < kOpsPerClient; ++op) {
        const uint64_t dice = rng.Next() % 10;
        if (dice < 2 && next_value < hi_bound) {  // insert private value
          RowId id = 0;
          if (!client.Insert(next_value, &id).ok()) {
            ++failures;
            return;
          }
          live[next_value] = id;
          ++next_value;
        } else if (dice < 3 && !live.empty()) {  // delete one of mine
          auto it = live.begin();
          std::advance(it, rng.Next() % live.size());
          if (!client.Delete(it->first, it->second).ok()) {
            ++failures;
            return;
          }
          live.erase(it);
        } else if (dice < 5) {  // private-range count vs local bookkeeping
          uint64_t count = 0;
          if (!client.Count(lo_bound, hi_bound, &count).ok() ||
              count != live.size()) {
            ++failures;
            return;
          }
        } else if (dice < 6) {  // private-range sum vs local bookkeeping
          int64_t sum = 0;
          int64_t expect = 0;
          for (const auto& [v, id] : live) expect += v;
          if (!client.Sum(lo_bound, hi_bound, &sum).ok() || sum != expect) {
            ++failures;
            return;
          }
        } else {  // base-range query vs the immutable oracle
          const Value lo = static_cast<Value>(rng.Next() % kRows);
          const Value hi =
              std::min<Value>(static_cast<Value>(kRows),
                              lo + 1 + static_cast<Value>(rng.Next() % 2000));
          switch (rng.Next() % 4) {
            case 0: {
              uint64_t count = 0;
              if (!client.Count(lo, hi, &count).ok() ||
                  count != oracle.Count(lo, hi)) {
                ++failures;
                return;
              }
              break;
            }
            case 1: {
              int64_t sum = 0;
              if (!client.Sum(lo, hi, &sum).ok() ||
                  sum != oracle.Sum(lo, hi)) {
                ++failures;
                return;
              }
              break;
            }
            case 2: {
              Value mn = 0, mx = 0;
              bool found = false;
              Value omn = 0, omx = 0;
              const bool ofound = oracle.MinMax(lo, hi, &omn, &omx);
              if (!client.MinMax(lo, hi, &mn, &mx, &found).ok() ||
                  found != ofound || (found && (mn != omn || mx != omx))) {
                ++failures;
                return;
              }
              break;
            }
            default: {
              std::vector<RowId> ids;
              if (!client.RowIds(lo, hi, &ids).ok() ||
                  !oracle.CheckRowIds(lo, hi, ids)) {
                ++failures;
                return;
              }
              break;
            }
          }
        }
        // Sprinkle batches through the run: three base counts at once.
        if (op % 37 == 36) {
          std::vector<QueryReq> batch;
          std::vector<std::pair<Value, Value>> ranges;
          for (int b = 0; b < 3; ++b) {
            const Value lo = static_cast<Value>(rng.Next() % kRows);
            const Value hi = std::min<Value>(
                static_cast<Value>(kRows),
                lo + 1 + static_cast<Value>(rng.Next() % 500));
            batch.push_back({QueryKind::kCount, lo, hi});
            ranges.emplace_back(lo, hi);
          }
          std::vector<ResultMsg> results;
          if (!client.Batch(batch, &results).ok() || results.size() != 3) {
            ++failures;
            return;
          }
          for (size_t b = 0; b < 3; ++b) {
            if (!results[b].ToStatus().ok() ||
                results[b].count !=
                    oracle.Count(ranges[b].first, ranges[b].second)) {
              ++failures;
              return;
            }
          }
        }
      }
      if (!client.CloseSession().ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->admission().global_in_flight(), 0u);
  server->Stop();
}

// ------------------------------------------------------------------ shutdown

TEST(ServerShutdownTest, StopWithLiveConnectionsDrainsCleanly) {
  auto server = StartServer(Column::UniqueRandom("A", 2000, 78));
  Client client = ConnectTo(*server);
  ASSERT_TRUE(client.OpenSession().ok());
  uint64_t count = 0;
  ASSERT_TRUE(client.Count(0, 500, &count).ok());
  EXPECT_EQ(count, 500u);

  server->Stop();  // client never said goodbye

  // The client observes a clean close, not a hang.
  Frame f;
  EXPECT_TRUE(client.ReadFrame(&f).IsNotFound());
  EXPECT_EQ(server->connections(), 0u);
}

TEST(ServerShutdownTest, StopIsIdempotentAndDestructorSafe) {
  auto server = StartServer(Column::UniqueRandom("A", 100, 79));
  server->Stop();
  server->Stop();
  server.reset();  // destructor after explicit stop: no double teardown
}

}  // namespace
}  // namespace server
}  // namespace adaptidx
