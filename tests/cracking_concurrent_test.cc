#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/cracking_index.h"
#include "engine/driver.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace adaptidx {
namespace {

constexpr size_t kRows = 20000;
constexpr int kThreads = 6;
constexpr int kQueriesPerThread = 150;

/// Runs `kThreads` clients of mixed count/sum/rowid/minmax queries against
/// `index`, checking every result against the oracle. Returns false on any
/// mismatch.
bool RunConcurrentQueries(CrackingIndex* index, const RangeOracle& oracle,
                          uint64_t seed) {
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed + static_cast<uint64_t>(t) * 7919);
      for (int i = 0; i < kQueriesPerThread && ok.load(); ++i) {
        Value lo = rng.UniformRange(0, kRows);
        Value hi = rng.UniformRange(0, kRows);
        if (lo > hi) std::swap(lo, hi);
        QueryContext ctx;
        ctx.client_id = static_cast<uint32_t>(t);
        switch (i % 4) {
          case 0: {
            uint64_t count = 0;
            if (!index->RangeCount(ValueRange{lo, hi}, &ctx, &count).ok() ||
                count != oracle.Count(lo, hi)) {
              ok.store(false);
            }
            break;
          }
          case 1: {
            int64_t sum = 0;
            if (!index->RangeSum(ValueRange{lo, hi}, &ctx, &sum).ok() ||
                sum != oracle.Sum(lo, hi)) {
              ok.store(false);
            }
            break;
          }
          case 2: {
            // RowID materialization is the most allocation-heavy kind;
            // shrink the range so the differential stays fast.
            const Value rhi = std::min<Value>(hi, lo + 2000);
            std::vector<RowId> ids;
            if (!index->RangeRowIds(ValueRange{lo, rhi}, &ctx, &ids).ok() ||
                !oracle.CheckRowIds(lo, rhi, ids)) {
              ok.store(false);
            }
            break;
          }
          default: {
            Value mn = 0;
            Value mx = 0;
            bool found = false;
            Value omn = 0;
            Value omx = 0;
            const bool ofound = oracle.MinMax(lo, hi, &omn, &omx);
            if (!index
                     ->RangeMinMax(ValueRange{lo, hi}, &ctx, &mn, &mx,
                                   &found)
                     .ok() ||
                found != ofound || (found && (mn != omn || mx != omx))) {
              ok.store(false);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return ok.load();
}

struct ConcurrentParam {
  ConcurrencyMode mode;
  SchedulingPolicy policy;
  RefinementStrategy strategy;
  bool group_crack;
  CrackPolicy crack_policy;
  const char* name;
};

class CrackingConcurrentTest
    : public ::testing::TestWithParam<ConcurrentParam> {
 protected:
  void SetUp() override {
    column_ = Column::UniqueRandom("A", kRows, 1234);
    oracle_ = std::make_unique<RangeOracle>(column_);
  }

  CrackingOptions Options() const {
    CrackingOptions opts;
    opts.mode = GetParam().mode;
    opts.scheduling = GetParam().policy;
    opts.strategy = GetParam().strategy;
    opts.group_crack = GetParam().group_crack;
    opts.crack_policy = GetParam().crack_policy;
    opts.policy_min_piece = 2048;
    opts.sort_piece_threshold = 256;
    return opts;
  }

  Column column_;
  std::unique_ptr<RangeOracle> oracle_;
};

TEST_P(CrackingConcurrentTest, AllResultsMatchOracle) {
  CrackingIndex index(&column_, Options());
  EXPECT_TRUE(RunConcurrentQueries(&index, *oracle_, 555));
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_P(CrackingConcurrentTest, SecondWaveAfterRefinementStillCorrect) {
  CrackingIndex index(&column_, Options());
  ASSERT_TRUE(RunConcurrentQueries(&index, *oracle_, 111));
  // The index is now heavily refined; run a second concurrent wave.
  EXPECT_TRUE(RunConcurrentQueries(&index, *oracle_, 222));
  EXPECT_TRUE(index.ValidateStructure());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CrackingConcurrentTest,
    ::testing::Values(
        ConcurrentParam{ConcurrencyMode::kPieceLatch,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kStandard, false, CrackPolicy::kExact,
                        "piece_middleout"},
        ConcurrentParam{ConcurrencyMode::kPieceLatch, SchedulingPolicy::kFifo,
                        RefinementStrategy::kStandard, false, CrackPolicy::kExact,
                        "piece_fifo"},
        ConcurrentParam{ConcurrencyMode::kColumnLatch,
                        SchedulingPolicy::kFifo,
                        RefinementStrategy::kStandard, false, CrackPolicy::kExact,
                        "column_latch"},
        ConcurrentParam{ConcurrencyMode::kPieceLatch,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kLazy, false, CrackPolicy::kExact,
                        "piece_lazy"},
        ConcurrentParam{ConcurrencyMode::kPieceLatch,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kActive, false, CrackPolicy::kExact,
                        "piece_active"},
        ConcurrentParam{ConcurrencyMode::kPieceLatch,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kDynamic, false, CrackPolicy::kExact,
                        "piece_dynamic"},
        ConcurrentParam{ConcurrencyMode::kPieceLatch,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kStandard, true, CrackPolicy::kExact,
                        "piece_groupcrack"},
        ConcurrentParam{ConcurrencyMode::kPieceLatch,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kStandard, false,
                        CrackPolicy::kMDD1R, "piece_mdd1r"},
        ConcurrentParam{ConcurrencyMode::kOptimistic,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kStandard, false, CrackPolicy::kExact,
                        "optimistic_middleout"},
        ConcurrentParam{ConcurrencyMode::kOptimistic,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kActive, false, CrackPolicy::kExact,
                        "optimistic_active_sorts"},
        ConcurrentParam{ConcurrencyMode::kOptimistic,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kStandard, true, CrackPolicy::kExact,
                        "optimistic_groupcrack"},
        ConcurrentParam{ConcurrencyMode::kAdaptive,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kStandard, false, CrackPolicy::kExact,
                        "adaptive_middleout"},
        ConcurrentParam{ConcurrencyMode::kAdaptive,
                        SchedulingPolicy::kFifo,
                        RefinementStrategy::kStandard, false,
                        CrackPolicy::kDDR, "adaptive_fifo_ddr"},
        ConcurrentParam{ConcurrencyMode::kOptimistic,
                        SchedulingPolicy::kMiddleOut,
                        RefinementStrategy::kStandard, false,
                        CrackPolicy::kDDC, "optimistic_ddc"}),
    [](const auto& info) { return info.param.name; });

// ------------------------------------------------------- Specific races

TEST(CrackingRaceTest, ManyThreadsSameQuery) {
  // All threads crack the same bounds at once: exactly two cracks must
  // result and everyone must read the same count.
  Column col = Column::UniqueRandom("A", kRows, 77);
  CrackingIndex index(&col);
  const uint64_t expected = 5000;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      QueryContext ctx;
      uint64_t count = 0;
      if (!index.RangeCount(ValueRange{5000, 10000}, &ctx, &count).ok() ||
          count != expected) {
        wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(index.NumCracks(), 2u);
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(CrackingRaceTest, OverlappingRangesConvergeToConsistentStructure) {
  Column col = Column::UniqueRandom("A", kRows, 88);
  RangeOracle oracle(col);
  CrackingIndex index(&col);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      // Heavily overlapping sliding windows from different offsets.
      for (int i = 0; i < 120 && ok.load(); ++i) {
        const Value lo = ((t * 331 + i * 97) % (kRows - 500));
        QueryContext ctx;
        uint64_t count = 0;
        if (!index.RangeCount(ValueRange{lo, lo + 500}, &ctx, &count).ok() ||
            count != oracle.Count(lo, lo + 500)) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(CrackingRaceTest, MixedReadersAndCrackersOnSamePiece) {
  // Half the threads aggregate over a fixed hot range (read latches) while
  // the other half keep cracking inside it (write latches).
  Column col = Column::UniqueRandom("A", kRows, 99);
  RangeOracle oracle(col);
  CrackingIndex index(&col);
  // Pre-crack the hot range bounds so readers can aggregate positionally.
  {
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{2000, 18000}, &ctx, &count).ok());
  }
  const int64_t hot_sum = oracle.Sum(2000, 18000);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900 + t);
      for (int i = 0; i < 100 && ok.load(); ++i) {
        QueryContext ctx;
        if (t % 2 == 0) {
          int64_t sum = 0;
          if (!index.RangeSum(ValueRange{2000, 18000}, &ctx, &sum).ok() ||
              sum != hot_sum) {
            ok.store(false);
          }
        } else {
          const Value lo = rng.UniformRange(2000, 17000);
          uint64_t count = 0;
          if (!index.RangeCount(ValueRange{lo, lo + 200}, &ctx, &count)
                   .ok() ||
              count != oracle.Count(lo, lo + 200)) {
            ok.store(false);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(CrackingRaceTest, ConflictsDecreaseAsIndexRefines) {
  // The paper's core claim (Figure 1 right, Figure 15): contention declines
  // as the index refines. Two signals:
  //  - refinement *work* (crack_ns) concentrates in the first half of the
  //    workload — early queries partition near-column-sized pieces, late
  //    ones partition slivers. The column is sized so the data work dwarfs
  //    the fixed per-crack cost (timers/latches), which is the same in both
  //    halves;
  //  - wait time in the second half is lower than in the first.
  // Both are timing measurements and noisy on an oversubscribed machine (a
  // latch holder can lose its timeslice to 7 waiting siblings), so each
  // signal gets a few attempts on fresh indexes; scheduler noise flips a
  // comparison occasionally, genuine regressions flip it every time.
  constexpr size_t kTestRows = 1000000;
  Column col = Column::UniqueRandom("A", kTestRows, 101);
  WorkloadGenerator gen(0, kTestRows);
  WorkloadOptions wopts;
  wopts.num_queries = 512;
  wopts.selectivity = 0.01;
  wopts.type = QueryType::kSum;
  wopts.seed = 5;
  auto queries = gen.Generate(wopts);

  bool wait_declined = false;
  bool work_declined = false;
  for (int attempt = 0;
       attempt < 3 && !(wait_declined && work_declined); ++attempt) {
    CrackingIndex index(&col);
    DriverOptions dopts;
    dopts.num_clients = 8;
    RunResult result = Driver::Run(&index, queries, dopts);
    ASSERT_TRUE(result.status.ok());
    ASSERT_EQ(result.records.size(), queries.size());

    int64_t first_half_wait = 0;
    int64_t second_half_wait = 0;
    int64_t first_half_crack_ns = 0;
    int64_t second_half_crack_ns = 0;
    for (size_t i = 0; i < result.records.size(); ++i) {
      if (i < result.records.size() / 2) {
        first_half_wait += result.records[i].stats.wait_ns;
        first_half_crack_ns += result.records[i].stats.crack_ns;
      } else {
        second_half_wait += result.records[i].stats.wait_ns;
        second_half_crack_ns += result.records[i].stats.crack_ns;
      }
    }
    EXPECT_TRUE(index.ValidateStructure());
    wait_declined |= first_half_wait > second_half_wait;
    work_declined |= first_half_crack_ns > second_half_crack_ns;
  }
  EXPECT_TRUE(wait_declined);
  EXPECT_TRUE(work_declined);
}

TEST(CrackingRaceTest, DriverResultsMatchOracleAllClients) {
  Column col = Column::UniqueRandom("A", kRows, 103);
  RangeOracle oracle(col);
  CrackingIndex index(&col);
  WorkloadGenerator gen(0, kRows);
  WorkloadOptions wopts;
  wopts.num_queries = 256;
  wopts.selectivity = 0.05;
  wopts.type = QueryType::kCount;
  auto queries = gen.Generate(wopts);
  DriverOptions dopts;
  dopts.num_clients = 4;
  RunResult result = Driver::Run(&index, queries, dopts);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.records.size(), queries.size());
  for (const auto& rec : result.records) {
    ASSERT_EQ(rec.result.count, oracle.Count(rec.query.lo, rec.query.hi));
  }
}

TEST(CrackingRaceTest, LazyUnderContentionSkipsButStaysCorrect) {
  Column col = Column::UniqueRandom("A", kRows, 105);
  RangeOracle oracle(col);
  CrackingOptions opts;
  opts.strategy = RefinementStrategy::kLazy;
  CrackingIndex index(&col, opts);
  EXPECT_TRUE(RunConcurrentQueries(&index, oracle, 321));
  EXPECT_TRUE(index.ValidateStructure());
}

}  // namespace
}  // namespace adaptidx
