#include "cracking/cracker_array.h"

#include <algorithm>

#include "cracking/crack_kernels.h"

namespace adaptidx {

CrackerArray::CrackerArray(const Column& column, ArrayLayout layout)
    : layout_(layout), size_(column.size()) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    pairs_.resize(size_);
    for (Position i = 0; i < size_; ++i) {
      pairs_[i] = CrackerEntry{static_cast<RowId>(i), column[i]};
    }
  } else {
    values_.assign(column.values().begin(), column.values().end());
    row_ids_.resize(size_);
    for (Position i = 0; i < size_; ++i) {
      row_ids_[i] = static_cast<RowId>(i);
    }
  }
}

CrackerArray::CrackerArray(std::vector<CrackerEntry> entries,
                           ArrayLayout layout)
    : layout_(layout), size_(entries.size()) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    pairs_ = std::move(entries);
  } else {
    values_.reserve(size_);
    row_ids_.reserve(size_);
    for (const auto& e : entries) {
      values_.push_back(e.value);
      row_ids_.push_back(e.row_id);
    }
  }
}

Position CrackerArray::CrackTwo(Position begin, Position end, Value pivot) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    PairAccessor a(pairs_.data());
    return CrackInTwo(a, begin, end, pivot);
  }
  SplitAccessor a(values_.data(), row_ids_.data());
  return CrackInTwo(a, begin, end, pivot);
}

std::pair<Position, Position> CrackerArray::CrackThree(Position begin,
                                                       Position end, Value lo,
                                                       Value hi) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    PairAccessor a(pairs_.data());
    return CrackInThree(a, begin, end, lo, hi);
  }
  SplitAccessor a(values_.data(), row_ids_.data());
  return CrackInThree(a, begin, end, lo, hi);
}

void CrackerArray::SortRange(Position begin, Position end) {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    std::sort(pairs_.begin() + static_cast<long>(begin),
              pairs_.begin() + static_cast<long>(end),
              [](const CrackerEntry& a, const CrackerEntry& b) {
                return a.value < b.value;
              });
    return;
  }
  // Pair-of-arrays layout: sort an index permutation, then apply it to both
  // arrays. Sorting happens rarely (active strategy, small pieces), so the
  // extra permutation buffer is acceptable.
  const size_t n = end - begin;
  std::vector<Position> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = begin + i;
  std::sort(perm.begin(), perm.end(), [this](Position a, Position b) {
    return values_[a] < values_[b];
  });
  std::vector<Value> tmp_v(n);
  std::vector<RowId> tmp_r(n);
  for (size_t i = 0; i < n; ++i) {
    tmp_v[i] = values_[perm[i]];
    tmp_r[i] = row_ids_[perm[i]];
  }
  std::copy(tmp_v.begin(), tmp_v.end(),
            values_.begin() + static_cast<long>(begin));
  std::copy(tmp_r.begin(), tmp_r.end(),
            row_ids_.begin() + static_cast<long>(begin));
}

uint64_t CrackerArray::ScanCountRange(Position begin, Position end, Value lo,
                                      Value hi) const {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    PairAccessor a(const_cast<CrackerEntry*>(pairs_.data()));
    return ScanCount(a, begin, end, lo, hi);
  }
  SplitAccessor a(const_cast<Value*>(values_.data()),
                  const_cast<RowId*>(row_ids_.data()));
  return ScanCount(a, begin, end, lo, hi);
}

int64_t CrackerArray::ScanSumRange(Position begin, Position end, Value lo,
                                   Value hi) const {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    PairAccessor a(const_cast<CrackerEntry*>(pairs_.data()));
    return ScanSum(a, begin, end, lo, hi);
  }
  SplitAccessor a(const_cast<Value*>(values_.data()),
                  const_cast<RowId*>(row_ids_.data()));
  return ScanSum(a, begin, end, lo, hi);
}

int64_t CrackerArray::PositionalSumRange(Position begin, Position end) const {
  if (layout_ == ArrayLayout::kRowIdValuePairs) {
    PairAccessor a(const_cast<CrackerEntry*>(pairs_.data()));
    return PositionalSum(a, begin, end);
  }
  SplitAccessor a(const_cast<Value*>(values_.data()),
                  const_cast<RowId*>(row_ids_.data()));
  return PositionalSum(a, begin, end);
}

void CrackerArray::CollectRowIds(Position begin, Position end,
                                 std::vector<RowId>* out) const {
  out->reserve(out->size() + (end - begin));
  for (Position i = begin; i < end; ++i) out->push_back(RowIdAt(i));
}

Position CrackerArray::LowerBoundInSorted(Position begin, Position end,
                                          Value v) const {
  Position lo = begin;
  Position hi = end;
  while (lo < hi) {
    Position mid = lo + (hi - lo) / 2;
    if (ValueAt(mid) < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace adaptidx
