#include "engine/database.h"

namespace adaptidx {

Status Database::CreateTable(const std::string& name,
                             std::vector<Column> columns) {
  auto table = std::make_unique<Table>(name);
  for (auto& col : columns) {
    Status s = table->AddColumn(std::move(col));
    if (!s.ok()) return s;
  }
  return catalog_.AddTable(std::move(table));
}

std::string Database::IndexKey(const std::string& table,
                               const std::string& column,
                               const IndexConfig& config) {
  return table + "/" + column + "#" + ToString(config.method);
}

std::shared_ptr<AdaptiveIndex> Database::GetOrCreateIndex(
    const std::string& table, const std::string& column,
    const IndexConfig& config) {
  Table* t = catalog_.GetTable(table);
  if (t == nullptr) return nullptr;
  const Column* col = t->GetColumn(column);
  if (col == nullptr) return nullptr;
  auto entry = catalog_.GetOrCreateIndexEntry(
      IndexKey(table, column, config),
      [col, &config]() -> std::shared_ptr<void> {
        return std::shared_ptr<void>(MakeIndex(col, config).release(),
                                     [](void* p) {
                                       delete static_cast<AdaptiveIndex*>(p);
                                     });
      });
  return std::shared_ptr<AdaptiveIndex>(
      entry, static_cast<AdaptiveIndex*>(entry.get()));
}

bool Database::DropIndex(const std::string& table, const std::string& column,
                         const IndexConfig& config) {
  return catalog_.DropIndexEntry(IndexKey(table, column, config));
}

Status Database::Count(const std::string& table, const std::string& column,
                       Value lo, Value hi, const IndexConfig& config,
                       uint64_t* out, QueryStats* stats) {
  auto index = GetOrCreateIndex(table, column, config);
  if (index == nullptr) {
    return Status::NotFound("no such table/column: " + table + "." + column);
  }
  QueryContext ctx;
  Status s = index->RangeCount(ValueRange{lo, hi}, &ctx, out);
  if (stats != nullptr) *stats = ctx.stats;
  return s;
}

Status Database::Sum(const std::string& table, const std::string& column,
                     Value lo, Value hi, const IndexConfig& config,
                     int64_t* out, QueryStats* stats) {
  auto index = GetOrCreateIndex(table, column, config);
  if (index == nullptr) {
    return Status::NotFound("no such table/column: " + table + "." + column);
  }
  QueryContext ctx;
  Status s = index->RangeSum(ValueRange{lo, hi}, &ctx, out);
  if (stats != nullptr) *stats = ctx.stats;
  return s;
}

Status Database::SumOther(const std::string& table,
                          const std::string& sel_column,
                          const std::string& agg_column, Value lo, Value hi,
                          const IndexConfig& config, int64_t* out,
                          QueryStats* stats) {
  Table* t = catalog_.GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  const Column* b = t->GetColumn(agg_column);
  if (b == nullptr) {
    return Status::NotFound("no such column: " + agg_column);
  }
  auto index = GetOrCreateIndex(table, sel_column, config);
  if (index == nullptr) {
    return Status::NotFound("no such column: " + sel_column);
  }
  QueryContext ctx;
  RangeQuery q{lo, hi, QueryType::kSum};
  Status s = FetchSum(index.get(), *b, q, &ctx, out);
  if (stats != nullptr) *stats = ctx.stats;
  return s;
}

}  // namespace adaptidx
