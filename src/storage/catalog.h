#ifndef ADAPTIDX_STORAGE_CATALOG_H_
#define ADAPTIDX_STORAGE_CATALOG_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "storage/table.h"
#include "util/status.h"

namespace adaptidx {

/// \brief The catalog owns tables and acts as the "global data structure
/// that keeps track of which cracker indexes do exist" (Section 5.3).
///
/// A select operator first latches the catalog to look up (or register) the
/// adaptive index for a column, then releases the catalog latch as soon as
/// the index-local latches are acquired. The catalog latch is therefore a
/// plain short-duration mutex; it is never held across query processing.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// \brief Registers a table; fails on duplicate name.
  Status AddTable(std::unique_ptr<Table> table);

  /// \brief Looks up a table; nullptr when absent. Thread-safe.
  Table* GetTable(const std::string& name);

  /// \brief Registers an opaque index object under `(table.column)` key,
  /// returning the already-registered one if a concurrent caller won the
  /// race. `factory` is only invoked when no entry exists (double-checked
  /// under the catalog latch).
  ///
  /// The catalog does not know index types; `core/` stores AdaptiveIndex
  /// instances here via shared_ptr<void>.
  std::shared_ptr<void> GetOrCreateIndexEntry(
      const std::string& key,
      const std::function<std::shared_ptr<void>()>& factory);

  /// \brief Looks up an index entry; nullptr when absent.
  std::shared_ptr<void> GetIndexEntry(const std::string& key);

  /// \brief Drops an index entry (adaptive indexes are optional and "can be
  /// dropped at any time", Section 4.2). Returns true when present.
  bool DropIndexEntry(const std::string& key);

  size_t num_tables() const;
  size_t num_indexes() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::shared_ptr<void>> indexes_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_STORAGE_CATALOG_H_
