#include "core/updatable_index.h"

#include <algorithm>

namespace adaptidx {

UpdatableIndex::UpdatableIndex(Column base, IndexConfig config,
                               LockManager* lock_manager,
                               std::string lock_resource)
    : config_(std::move(config)),
      lock_manager_(lock_manager),
      lock_resource_(std::move(lock_resource)),
      base_(std::make_unique<Column>(std::move(base))),
      next_row_id_(static_cast<RowId>(base_->size())) {
  RebuildIndexLocked();
}

void UpdatableIndex::RebuildIndexLocked() {
  if (config_.method == IndexMethod::kCrack && lock_manager_ != nullptr) {
    config_.cracking.lock_manager = lock_manager_;
    config_.cracking.lock_resource = lock_resource_;
  }
  index_ = MakeIndex(base_.get(), config_);
}

std::string UpdatableIndex::Name() const {
  return "updatable(" + index_->Name() + ")";
}

void UpdatableIndex::DiffCountSumLocked(const ValueRange& range,
                                        uint64_t* ins_count, int64_t* ins_sum,
                                        uint64_t* del_count,
                                        int64_t* del_sum) const {
  *ins_count = 0;
  *ins_sum = 0;
  *del_count = 0;
  *del_sum = 0;
  for (auto it = inserts_.lower_bound(range.lo);
       it != inserts_.end() && it->first < range.hi; ++it) {
    ++*ins_count;
    *ins_sum += it->first;
  }
  for (auto it = anti_matter_.lower_bound({range.lo, 0});
       it != anti_matter_.end() && it->first < range.hi; ++it) {
    ++*del_count;
    *del_sum += it->first;
  }
}

Status UpdatableIndex::ExecuteImpl(const Query& query, QueryContext* ctx,
                                   QueryResult* result) {
  const ValueRange& range = query.range;
  std::shared_lock<std::shared_mutex> lk(mu_);
  switch (query.kind) {
    case QueryKind::kCount:
    case QueryKind::kSum: {
      QueryResult base;
      Status s = index_->Execute(query, ctx, &base);
      if (!s.ok()) return s;
      uint64_t ins_c;
      int64_t ins_s;
      uint64_t del_c;
      int64_t del_s;
      DiffCountSumLocked(range, &ins_c, &ins_s, &del_c, &del_s);
      if (query.kind == QueryKind::kCount) {
        result->count = base.count + ins_c - del_c;
      } else {
        result->sum = base.sum + ins_s - del_s;
      }
      return Status::OK();
    }
    case QueryKind::kRowIds: {
      QueryResult base;
      Status s = index_->Execute(query, ctx, &base);
      if (!s.ok()) return s;
      result->row_ids = std::move(base.row_ids);
      if (!anti_matter_.empty()) {
        // Filter out rows hidden by anti-matter; values come from the base
        // column (row ids of base rows are positions).
        auto hidden = [this](RowId id) {
          return anti_matter_.count({(*base_)[id], id}) > 0;
        };
        result->row_ids.erase(std::remove_if(result->row_ids.begin(),
                                             result->row_ids.end(), hidden),
                              result->row_ids.end());
      }
      for (auto it = inserts_.lower_bound(range.lo);
           it != inserts_.end() && it->first < range.hi; ++it) {
        result->row_ids.push_back(it->second);
      }
      return Status::OK();
    }
    case QueryKind::kMinMax: {
      MinMaxAccumulator acc;
      auto am_it = anti_matter_.lower_bound({range.lo, 0});
      const bool deletions_in_range =
          am_it != anti_matter_.end() && am_it->first < range.hi;
      if (!deletions_in_range) {
        // The base answer cannot name a deleted extreme; combine it with
        // the pending insertions directly.
        QueryResult base;
        Status s = index_->Execute(query, ctx, &base);
        if (!s.ok()) return s;
        if (base.has_minmax) acc.Feed(base.min_value, base.max_value);
      } else {
        // A deleted row may have been the extreme; re-derive from the base
        // column skipping hidden rows. Deletions in the queried range are
        // the rare case, so the O(n) pass stays off the common path.
        for (size_t i = 0; i < base_->size(); ++i) {
          const Value v = (*base_)[i];
          if (!range.Contains(v)) continue;
          if (anti_matter_.count({v, static_cast<RowId>(i)}) > 0) continue;
          acc.Feed(v);
        }
      }
      for (auto it = inserts_.lower_bound(range.lo);
           it != inserts_.end() && it->first < range.hi; ++it) {
        acc.Feed(it->first);
      }
      acc.Store(result);
      return Status::OK();
    }
    case QueryKind::kSumOther:
      return Status::NotSupported("updatable index holds no second column");
  }
  return Status::InvalidArgument("unknown query kind");
}

Status UpdatableIndex::Insert(Value v, QueryContext* ctx, RowId* row_id) {
  // User transaction: exclusive key lock under the column resource.
  const bool locking = lock_manager_ != nullptr && !lock_resource_.empty();
  if (locking) {
    Status s = lock_manager_->Acquire(
        ctx->txn_id, lock_resource_ + "/key:" + std::to_string(v),
        LockMode::kX);
    if (!s.ok()) return s;
  }
  RowId assigned;
  {
    std::unique_lock<std::shared_mutex> lk(mu_);
    assigned = next_row_id_++;
    inserts_.emplace(v, assigned);
  }
  if (locking) lock_manager_->ReleaseAll(ctx->txn_id);  // auto-commit
  if (row_id != nullptr) *row_id = assigned;
  return Status::OK();
}

Status UpdatableIndex::Delete(Value v, RowId row_id, QueryContext* ctx) {
  const bool locking = lock_manager_ != nullptr && !lock_resource_.empty();
  if (locking) {
    Status s = lock_manager_->Acquire(
        ctx->txn_id, lock_resource_ + "/key:" + std::to_string(v),
        LockMode::kX);
    if (!s.ok()) return s;
  }
  Status result = Status::OK();
  {
    std::unique_lock<std::shared_mutex> lk(mu_);
    // A pending insertion is cancelled directly.
    bool cancelled = false;
    for (auto it = inserts_.lower_bound(v);
         it != inserts_.end() && it->first == v; ++it) {
      if (it->second == row_id) {
        inserts_.erase(it);
        cancelled = true;
        break;
      }
    }
    if (!cancelled) {
      const bool in_base = row_id < base_->size() && (*base_)[row_id] == v;
      if (!in_base || anti_matter_.count({v, row_id}) > 0) {
        result = Status::NotFound("no live tuple (" + std::to_string(v) +
                                  ", " + std::to_string(row_id) + ")");
      } else {
        anti_matter_.emplace(v, row_id);
      }
    }
  }
  if (locking) lock_manager_->ReleaseAll(ctx->txn_id);
  return result;
}

Status UpdatableIndex::Checkpoint() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  std::vector<Value> values;
  values.reserve(base_->size() + inserts_.size() - anti_matter_.size());
  for (size_t i = 0; i < base_->size(); ++i) {
    const Value v = (*base_)[i];
    if (anti_matter_.count({v, static_cast<RowId>(i)}) > 0) continue;
    values.push_back(v);
  }
  for (const auto& [v, id] : inserts_) values.push_back(v);
  base_ = std::make_unique<Column>(base_->name(), std::move(values));
  inserts_.clear();
  anti_matter_.clear();
  next_row_id_ = static_cast<RowId>(base_->size());
  RebuildIndexLocked();
  return Status::OK();
}

size_t UpdatableIndex::num_rows() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return base_->size() + inserts_.size() - anti_matter_.size();
}

size_t UpdatableIndex::pending_inserts() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return inserts_.size();
}

size_t UpdatableIndex::pending_deletes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return anti_matter_.size();
}

}  // namespace adaptidx
