#ifndef ADAPTIDX_CRACKING_SPAN_KERNELS_H_
#define ADAPTIDX_CRACKING_SPAN_KERNELS_H_

#include <cstdint>
#include <utility>

#include "cracking/cracker_array.h"
#include "cracking/kernel_tiers.h"
#include "storage/types.h"

namespace adaptidx {

/// \file
/// Branchless / SIMD crack and scan kernels over raw spans.
///
/// The accessor-templated kernels in crack_kernels.h pay for their
/// generality: the pair-of-arrays layout streams a dense `Value*` span, and
/// on that representation the partition/scan loops can be written
/// branch-free and vectorized. These entry points take raw pointers (plus a
/// KernelTier chosen once per call by CrackerArray) so the per-element work
/// is a straight-line loop with no layout test and no accessor indirection.
///
/// Tier map (see kernel_tiers.h):
///                 scans (Count/Sum/PositionalSum)   cracks (two/three-way)
///   kReference    branchy scalar (reference TU)     branchy scalar
///   kBranchless   unsigned-range trick, unrolled    predicated (cmov)
///   kAvx2         AVX2 compare+mask accumulate      predicated (cmov)
///   kAvx512       AVX2 scans (bandwidth-bound;      vpcompress two-sided
///                 wider vectors add nothing)        in-place partition
///
/// SIMD implementations are compiled with GCC/Clang `target` attributes and
/// guarded by the runtime cpuid check in kernel_tiers.cc, so the library
/// builds and runs on any x86-64 (and, via the scalar tiers, any
/// architecture) regardless of -march flags.
///
/// All cracks keep the normalized semantics of crack_kernels.h: values
/// < pivot strictly before the returned split, >= pivot at or after it, and
/// `values[i]` travels with `row_ids[i]` at all times.

/// \brief Counts values in [lo, hi) over the span [begin, end).
uint64_t ScanCountSpan(const Value* values, Position begin, Position end,
                       Value lo, Value hi, KernelTier tier);

/// \brief Sums values in [lo, hi) over the span [begin, end).
int64_t ScanSumSpan(const Value* values, Position begin, Position end,
                    Value lo, Value hi, KernelTier tier);

/// \brief Sums every value in [begin, end).
int64_t PositionalSumSpan(const Value* values, Position begin, Position end,
                          KernelTier tier);

/// \brief Min and max over [begin, end); requires a non-empty range.
void MinMaxSpan(const Value* values, Position begin, Position end, Value* lo,
                Value* hi);

/// \brief Two-way crack of the pair-of-arrays layout: partitions
/// values[begin, end) around `pivot`, permuting row_ids in tandem.
Position CrackInTwoSpan(Value* values, RowId* row_ids, Position begin,
                        Position end, Value pivot, KernelTier tier);

/// \brief Three-way crack of the pair-of-arrays layout; result identical to
/// CrackInTwoSpan on `lo` followed by CrackInTwoSpan on `hi`.
std::pair<Position, Position> CrackInThreeSpan(Value* values, RowId* row_ids,
                                               Position begin, Position end,
                                               Value lo, Value hi,
                                               KernelTier tier);

// --------------------------------------------------------------------------
// Entry (rowID-value struct) kernels for the kRowIdValuePairs layout. The
// interleaved layout rules out useful vectorization, but the branchless
// forms still beat the reference kernels wherever the predicate branch is
// unpredictable.

uint64_t ScanCountEntries(const CrackerEntry* entries, Position begin,
                          Position end, Value lo, Value hi);

int64_t ScanSumEntries(const CrackerEntry* entries, Position begin,
                       Position end, Value lo, Value hi);

int64_t PositionalSumEntries(const CrackerEntry* entries, Position begin,
                             Position end);

Position CrackInTwoEntries(CrackerEntry* entries, Position begin, Position end,
                           Value pivot);

std::pair<Position, Position> CrackInThreeEntries(CrackerEntry* entries,
                                                  Position begin, Position end,
                                                  Value lo, Value hi);

namespace detail {

// Per-tier implementations, exposed so the differential tests and the
// micro-benchmarks can pin a tier regardless of what the CPU supports
// (SIMD entry points still require the matching cpuid feature).

uint64_t ScanCountBranchless(const Value* values, Position begin, Position end,
                             Value lo, Value hi);
int64_t ScanSumBranchless(const Value* values, Position begin, Position end,
                          Value lo, Value hi);
int64_t PositionalSumUnrolled(const Value* values, Position begin,
                              Position end);
Position CrackInTwoPredSpan(Value* values, RowId* row_ids, Position begin,
                            Position end, Value pivot);

bool HaveAvx2();
bool HaveAvx512();

#ifdef ADAPTIDX_X86_SIMD
uint64_t ScanCountAvx2(const Value* values, Position begin, Position end,
                       Value lo, Value hi);
int64_t ScanSumAvx2(const Value* values, Position begin, Position end,
                    Value lo, Value hi);
int64_t PositionalSumAvx2(const Value* values, Position begin, Position end);
Position CrackInTwoAvx512(Value* values, RowId* row_ids, Position begin,
                          Position end, Value pivot);
#endif

}  // namespace detail

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_SPAN_KERNELS_H_
