/// \file Durability/recovery characteristics (beyond the paper's figures,
/// which assume a memory-resident engine): what restarting an adaptive
/// index actually costs, and what group commit buys the update stream.
///
/// Part A — time to first query vs checkpoint age: a cracking index is
/// trained with random range queries, checkpointed, then aged with
/// `age` further WAL-logged inserts and reopened. Reported per age:
/// recovery time (checkpoint load + WAL replay) and the first post-restart
/// query latency, against the cold baseline (same column, no inherited
/// adaptation, first query pays the initial full-partition crack). The
/// acceptance gate is the tentpole claim: with a fresh checkpoint the
/// first recovered query runs measurably below cold re-adaptation,
/// because it binary-searches the restored piece map instead of scanning.
///
/// Part B — committed-transaction throughput across fsync policies
/// (always / group / none) at 1 and 8 concurrent committers. The gate is
/// the group-commit claim: at >= 8 committers, group >= 2x always. On
/// devices where fsync is nearly free (fast NVMe write caches, tmpfs CI
/// mounts) the gap physically collapses, so the gate is waived — and
/// recorded as waived — when a measured fdatasync round trip is under
/// ~30 microseconds.
///
/// Emits BENCH_recovery.json (override with AI_BENCH_RECOVERY_JSON).

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/updatable_index.h"
#include "durability/durable_index.h"
#include "lock/lock_manager.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace adaptidx {
namespace bench {
namespace {

namespace fs = std::filesystem;

IndexConfig CrackConfig() {
  IndexConfig config;
  config.method = IndexMethod::kCrack;
  return config;
}

struct RecoveryPoint {
  size_t age = 0;            ///< WAL records past the checkpoint
  double open_ms = 0.0;      ///< DurableIndex::Open (load + replay)
  double first_query_ms = 0.0;
  size_t pieces = 0;         ///< piece count right after recovery
};

/// Trains `queries` random counts on a fresh durable index in `dir`,
/// checkpoints, ages the log with `age` inserts, and closes cleanly except
/// for the WAL suffix (which is exactly what recovery must replay).
void PrepareAgedDir(const std::string& dir, const Column& seed,
                    size_t queries, size_t age) {
  LockManager lm;
  DurabilityOptions opts;
  opts.data_dir = dir;
  opts.fsync_policy = FsyncPolicy::kNone;  // prep speed; replay is the point
  std::unique_ptr<DurableIndex> di;
  Status s = DurableIndex::Open(seed, CrackConfig(), opts, &lm, "b", &di);
  if (!s.ok()) {
    std::fprintf(stderr, "prep open failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  QueryContext ctx;
  ctx.txn_id = 1;
  Rng rng(7);
  const Value span = static_cast<Value>(seed.size());
  for (size_t i = 0; i < queries; ++i) {
    const Value lo = static_cast<Value>(rng.Uniform(
        static_cast<uint64_t>(span > 1000 ? span - 1000 : 1)));
    uint64_t count = 0;
    di->index()->RangeCount(ValueRange{lo, lo + 997}, &ctx, &count);
  }
  if (!di->Checkpoint().ok()) {
    std::fprintf(stderr, "prep checkpoint failed\n");
    std::exit(1);
  }
  for (size_t i = 0; i < age; ++i) {
    di->index()->Insert(span + static_cast<Value>(i), &ctx);
  }
  di->wal_stats();  // keep the WAL alive until here
}

RecoveryPoint MeasureRecovery(const std::string& dir, const Column& seed,
                              size_t age) {
  RecoveryPoint point;
  point.age = age;
  LockManager lm;
  DurabilityOptions opts;
  opts.data_dir = dir;
  opts.fsync_policy = FsyncPolicy::kNone;
  std::unique_ptr<DurableIndex> di;
  StopWatch open_watch;
  Status s = DurableIndex::Open(seed, CrackConfig(), opts, &lm, "b", &di);
  point.open_ms = open_watch.ElapsedMillis();
  if (!s.ok()) {
    std::fprintf(stderr, "recovery open failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  point.pieces = di->index()->NumPieces();
  QueryContext ctx;
  uint64_t count = 0;
  const Value mid = static_cast<Value>(seed.size() / 2);
  StopWatch query_watch;
  di->index()->RangeCount(ValueRange{mid, mid + 997}, &ctx, &count);
  point.first_query_ms = query_watch.ElapsedMillis();
  return point;
}

struct ThroughputPoint {
  const char* policy = "";
  size_t committers = 0;
  double commits_per_sec = 0.0;
  uint64_t fsyncs = 0;
  uint64_t flush_batches = 0;
  uint64_t max_batch = 0;
};

ThroughputPoint MeasureThroughput(const std::string& dir, const Column& seed,
                                  FsyncPolicy policy, const char* name,
                                  size_t committers, size_t ops_per_thread) {
  LockManager lm;
  DurabilityOptions opts;
  opts.data_dir = dir;
  opts.fsync_policy = policy;
  std::unique_ptr<DurableIndex> di;
  Status s = DurableIndex::Open(seed, CrackConfig(), opts, &lm, "b", &di);
  if (!s.ok()) {
    std::fprintf(stderr, "throughput open failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  const Value base = static_cast<Value>(seed.size());
  StopWatch watch;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < committers; ++t) {
    threads.emplace_back([&, t] {
      QueryContext ctx;
      ctx.txn_id = t + 1;
      for (size_t i = 0; i < ops_per_thread; ++i) {
        di->index()->Insert(
            base + static_cast<Value>(t * ops_per_thread + i), &ctx);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double seconds = watch.ElapsedSeconds();
  const WalStats stats = di->wal_stats();
  ThroughputPoint point;
  point.policy = name;
  point.committers = committers;
  point.commits_per_sec =
      static_cast<double>(committers * ops_per_thread) / seconds;
  point.fsyncs = stats.fsync_count;
  point.flush_batches = stats.flush_batches;
  point.max_batch = stats.max_batch;
  return point;
}

/// Average fdatasync round trip on the bench device — decides whether the
/// group-vs-always gate is physically meaningful here.
double MeasureFsyncMicros(const std::string& dir) {
  const std::string path = dir + "/fsync_probe";
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return 0.0;
  const char byte = 'x';
  StopWatch watch;
  constexpr int kRounds = 64;
  for (int i = 0; i < kRounds; ++i) {
    if (::write(fd, &byte, 1) != 1) break;
    ::fdatasync(fd);
  }
  const double micros = watch.ElapsedMicros() / kRounds;
  ::close(fd);
  return micros;
}

void Run() {
  const size_t rows = EnvSize("AI_BENCH_ROWS", 2000000);
  const size_t train_queries = EnvSize("AI_BENCH_TRAIN_QUERIES", 300);
  const size_t ops_per_thread = EnvSize("AI_BENCH_COMMIT_OPS", 4000);
  const std::string root =
      (fs::temp_directory_path() /
       ("adaptidx_fig17_" + std::to_string(::getpid())))
          .string();
  fs::create_directories(root);

  PrintHeader("fig17: recovery and group commit",
              "rows=" + std::to_string(rows) +
                  " train_queries=" + std::to_string(train_queries) +
                  " commit_ops/thread=" + std::to_string(ops_per_thread));
  Column seed = MakeUniqueRandomColumn(rows);

  // ---- Part A: time to first query, cold vs inherited -------------------
  // Cold baseline: the same column served fresh; the first query pays the
  // initial crack of the whole partition.
  double cold_first_query_ms = 0.0;
  size_t cold_pieces = 0;
  {
    LockManager lm;
    UpdatableIndex cold(Column(seed.name(), seed.values()), CrackConfig(),
                        &lm, "b");
    QueryContext ctx;
    uint64_t count = 0;
    const Value mid = static_cast<Value>(rows / 2);
    StopWatch watch;
    cold.RangeCount(ValueRange{mid, mid + 997}, &ctx, &count);
    cold_first_query_ms = watch.ElapsedMillis();
    cold_pieces = cold.NumPieces();
  }
  std::printf("cold first query: %.3f ms (%zu pieces after)\n",
              cold_first_query_ms, cold_pieces);

  std::vector<RecoveryPoint> recovery;
  const size_t ages[] = {0, EnvSize("AI_BENCH_AGE_MID", 10000),
                         EnvSize("AI_BENCH_AGE_MAX", 40000)};
  for (size_t age : ages) {
    const std::string dir = root + "/age" + std::to_string(age);
    fs::create_directories(dir);
    PrepareAgedDir(dir, seed, train_queries, age);
    const RecoveryPoint point = MeasureRecovery(dir, seed, age);
    std::printf(
        "age %6zu: open %.2f ms, first query %.4f ms, %zu pieces inherited\n",
        point.age, point.open_ms, point.first_query_ms, point.pieces);
    recovery.push_back(point);
  }
  // Gate: with a fresh checkpoint (age 0) the inherited first query beats
  // the cold first crack. The margin is conservative (2x, where the real
  // gap is typically orders of magnitude) to stay robust on noisy CI.
  const bool inherit_gate =
      !recovery.empty() &&
      recovery[0].first_query_ms * 2.0 < cold_first_query_ms &&
      recovery[0].pieces > 1;
  std::printf("inheritance gate (age-0 first query * 2 < cold): %s\n",
              inherit_gate ? "pass" : "FAIL");

  // ---- Part B: committed throughput across fsync policies ---------------
  const double fsync_micros = MeasureFsyncMicros(root);
  std::printf("fdatasync round trip: %.1f us\n", fsync_micros);
  struct PolicyCase {
    FsyncPolicy policy;
    const char* name;
  };
  const PolicyCase cases[] = {{FsyncPolicy::kAlways, "always"},
                              {FsyncPolicy::kGroup, "group"},
                              {FsyncPolicy::kNone, "none"}};
  std::vector<ThroughputPoint> throughput;
  double always8 = 0.0, group8 = 0.0;
  for (const PolicyCase& pc : cases) {
    for (size_t committers : {size_t{1}, size_t{8}}) {
      const std::string dir = root + "/tp_" + pc.name + "_" +
                              std::to_string(committers);
      fs::create_directories(dir);
      const ThroughputPoint point = MeasureThroughput(
          dir, seed, pc.policy, pc.name, committers, ops_per_thread);
      std::printf(
          "%-7s x%zu committers: %10.0f commits/s  (fsyncs=%llu, "
          "batches=%llu, max_batch=%llu)\n",
          point.policy, point.committers, point.commits_per_sec,
          static_cast<unsigned long long>(point.fsyncs),
          static_cast<unsigned long long>(point.flush_batches),
          static_cast<unsigned long long>(point.max_batch));
      throughput.push_back(point);
      if (pc.policy == FsyncPolicy::kAlways && committers == 8) {
        always8 = point.commits_per_sec;
      }
      if (pc.policy == FsyncPolicy::kGroup && committers == 8) {
        group8 = point.commits_per_sec;
      }
    }
  }
  const bool group_gate = group8 >= 2.0 * always8;
  // On a device where one fdatasync costs well under the group-commit
  // batching window there is nothing to amortize; the claim is about real
  // sync costs, so the gate is waived (and recorded) there.
  const bool gate_waived = !group_gate && fsync_micros < 30.0;
  std::printf("group-commit gate (group >= 2x always @8): %s%s\n",
              group_gate ? "pass" : "FAIL",
              gate_waived ? " (waived: fsync < 30us on this device)" : "");

  // ---- JSON artifact ----------------------------------------------------
  const char* json_env = std::getenv("AI_BENCH_RECOVERY_JSON");
  const std::string json_path = json_env != nullptr && *json_env != '\0'
                                    ? json_env
                                    : "BENCH_recovery.json";
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fig17_recovery\",\n  \"rows\": %zu,\n"
               "  \"train_queries\": %zu,\n"
               "  \"cold_first_query_ms\": %.4f,\n  \"recovery\": [\n",
               rows, train_queries, cold_first_query_ms);
  for (size_t i = 0; i < recovery.size(); ++i) {
    std::fprintf(f,
                 "    {\"age\": %zu, \"open_ms\": %.3f, "
                 "\"first_query_ms\": %.4f, \"pieces\": %zu}%s\n",
                 recovery[i].age, recovery[i].open_ms,
                 recovery[i].first_query_ms, recovery[i].pieces,
                 i + 1 < recovery.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"inherit_gate\": %s,\n  \"throughput\": [\n",
               inherit_gate ? "true" : "false");
  for (size_t i = 0; i < throughput.size(); ++i) {
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"committers\": %zu, "
                 "\"commits_per_sec\": %.1f, \"fsyncs\": %llu, "
                 "\"flush_batches\": %llu, \"max_batch\": %llu}%s\n",
                 throughput[i].policy, throughput[i].committers,
                 throughput[i].commits_per_sec,
                 static_cast<unsigned long long>(throughput[i].fsyncs),
                 static_cast<unsigned long long>(throughput[i].flush_batches),
                 static_cast<unsigned long long>(throughput[i].max_batch),
                 i + 1 < throughput.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"fsync_micros\": %.2f,\n"
               "  \"group_gate\": %s,\n  \"gate_waived\": %s\n}\n",
               fsync_micros, group_gate ? "true" : "false",
               gate_waived ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  std::error_code ec;
  fs::remove_all(root, ec);
  if (!inherit_gate || (!group_gate && !gate_waived)) {
    std::exit(2);  // the CI smoke gates on this
  }
}

}  // namespace
}  // namespace bench
}  // namespace adaptidx

int main() {
  adaptidx::bench::Run();
  return 0;
}
