/// \file Differential and concurrency suite for PartitionedIndex: a
/// partitioned index over any inner method must agree with the index-free
/// oracle (and hence with its unpartitioned sibling) for every query kind,
/// on friendly and hostile data alike; concurrent sessions over disjoint
/// and overlapping ranges must stay correct (and race-free under TSAN).

#include <algorithm>
#include <memory>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/index_factory.h"
#include "core/partitioned_index.h"
#include "engine/operators.h"
#include "engine/session.h"
#include "util/thread_pool.h"
#include "test_util.h"
#include "workload/workload.h"

namespace adaptidx {
namespace {

IndexConfig MethodConfig(IndexMethod method) {
  IndexConfig config;
  config.method = method;
  // Small runs/partitions so the merge-style methods actually exercise
  // their multi-piece machinery at test scale.
  config.merge.run_size = 1u << 10;
  config.hybrid.partition_size = 1u << 10;
  config.btree.run_size = 1u << 9;
  // This suite tests the partitioned wrapper itself, so the row and
  // hardware fan-out floors must not bypass it at test scale or on
  // single-core hosts.
  config.min_rows_per_shard = 0;
  config.partition_needs_cores = false;
  return config;
}

const IndexMethod kAllMethods[] = {
    IndexMethod::kScan,   IndexMethod::kSort,
    IndexMethod::kCrack,  IndexMethod::kAdaptiveMerge,
    IndexMethod::kHybrid, IndexMethod::kBTreeMerge,
};

/// Sorted copy — rowID answers have no canonical order (fragment order for
/// partitioned, physical order otherwise), so agreement is multiset
/// agreement.
std::vector<RowId> Sorted(std::vector<RowId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Executes `query` against `index` and checks the answer against the
/// oracle over the base column.
void ExpectAgreesWithOracle(AdaptiveIndex* index, const Column& column,
                            const Query& query, const std::string& what) {
  QueryContext ctx;
  QueryResult got;
  ASSERT_TRUE(index->Execute(query, &ctx, &got).ok()) << what;
  const QueryResult want = OracleExecute(column, query);
  EXPECT_EQ(got.count, want.count) << what;
  EXPECT_EQ(got.sum, want.sum) << what;
  EXPECT_EQ(Sorted(got.row_ids), Sorted(want.row_ids)) << what;
  EXPECT_EQ(got.has_minmax, want.has_minmax) << what;
  if (got.has_minmax && want.has_minmax) {
    EXPECT_EQ(got.min_value, want.min_value) << what;
    EXPECT_EQ(got.max_value, want.max_value) << what;
  }
}

/// Runs the full kind × range matrix for one method over one column.
void RunDifferential(IndexMethod method, const Column& column,
                     const std::vector<ValueRange>& ranges) {
  IndexConfig config = MethodConfig(method);
  config.partitions = 4;
  auto partitioned = MakeIndex(&column, config);
  ASSERT_NE(partitioned, nullptr);
  const QueryKind kinds[] = {QueryKind::kCount, QueryKind::kSum,
                             QueryKind::kRowIds, QueryKind::kMinMax};
  for (const ValueRange& r : ranges) {
    for (QueryKind kind : kinds) {
      Query q;
      q.kind = kind;
      q.range = r;
      ExpectAgreesWithOracle(
          partitioned.get(), column, q,
          ToString(method) + "/" + ToString(kind) + " [" +
              std::to_string(r.lo) + "," + std::to_string(r.hi) + ")");
    }
  }
}

/// Ranges that stress routing: inside one shard, straddling shard
/// boundaries, full domain, clipped at domain edges, empty, inverted.
std::vector<ValueRange> HostileRanges(const Column& column, size_t domain) {
  IndexConfig probe = MethodConfig(IndexMethod::kScan);
  probe.partitions = 4;
  PartitionedIndex part(&column, probe);
  QueryContext ctx;
  uint64_t unused;
  (void)part.RangeCount(ValueRange{0, 1}, &ctx, &unused);  // force init
  const Value d = static_cast<Value>(domain);
  std::vector<ValueRange> ranges = {
      {0, d},                    // full domain
      {-100, d + 100},           // beyond both edges
      {d / 8, d / 8 + d / 16},   // inside the first shard
      {50, 50},                  // empty
      {d / 2, d / 2 - 10},       // inverted (empty)
      {d - 1, d},                // last value only
      {0, 1},                    // first value only
  };
  // Straddle every estimated shard boundary, and sit exactly on it.
  for (Value b : part.ShardBounds()) {
    ranges.push_back(ValueRange{b - 37, b + 41});
    ranges.push_back(ValueRange{b, b + 53});
    ranges.push_back(ValueRange{b - 53, b});
  }
  return ranges;
}

TEST(PartitionedDifferentialTest, UniqueRandomAllMethodsAllKinds) {
  const size_t n = 20000;
  Column column = Column::UniqueRandom("A", n, 11);
  const auto ranges = HostileRanges(column, n);
  for (IndexMethod method : kAllMethods) {
    RunDifferential(method, column, ranges);
  }
}

TEST(PartitionedDifferentialTest, DuplicateHeavyAllMethodsAllKinds) {
  // ~16 distinct values over 20000 rows: quantile cuts collapse, shards
  // carry huge duplicate groups, and boundary values occur in bulk.
  const size_t n = 20000;
  Column column = Column::UniformRandom("A", n, 0, 16, 12);
  const auto ranges = HostileRanges(column, 16);
  for (IndexMethod method : kAllMethods) {
    RunDifferential(method, column, ranges);
  }
}

TEST(PartitionedDifferentialTest, AllEqualCollapsesToOneShard) {
  Column column("A", std::vector<Value>(5000, 42));
  IndexConfig config = MethodConfig(IndexMethod::kCrack);
  config.partitions = 8;
  PartitionedIndex index(&column, config);
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(index.RangeCount(ValueRange{0, 100}, &ctx, &count).ok());
  EXPECT_EQ(count, 5000u);
  EXPECT_EQ(index.num_shards(), 1u);  // every quantile cut deduplicated
  Value mn;
  Value mx;
  bool found = false;
  ASSERT_TRUE(
      index.RangeMinMax(ValueRange{0, 100}, &ctx, &mn, &mx, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(mn, 42);
  EXPECT_EQ(mx, 42);
}

TEST(PartitionedDifferentialTest, EmptyColumn) {
  Column column("A", std::vector<Value>{});
  IndexConfig config = MethodConfig(IndexMethod::kCrack);
  config.partitions = 4;
  PartitionedIndex index(&column, config);
  QueryContext ctx;
  uint64_t count = 7;
  ASSERT_TRUE(index.RangeCount(ValueRange{0, 100}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
  bool found = true;
  Value mn;
  Value mx;
  ASSERT_TRUE(
      index.RangeMinMax(ValueRange{0, 100}, &ctx, &mn, &mx, &found).ok());
  EXPECT_FALSE(found);
}

TEST(PartitionedIndexTest, ShardStructureAndStats) {
  const size_t n = 16000;
  Column column = Column::UniqueRandom("A", n, 13);
  IndexConfig config = MethodConfig(IndexMethod::kCrack);
  config.partitions = 4;
  PartitionedIndex index(&column, config);
  EXPECT_EQ(index.num_shards(), 4u);  // requested count before first touch
  EXPECT_EQ(index.NumPieces(), 0u);
  EXPECT_FALSE(index.initialized());

  QueryContext ctx;
  uint64_t count = 0;
  // Full-domain query: every shard contributes a fragment.
  ASSERT_TRUE(index.RangeCount(ValueRange{0, static_cast<Value>(n)}, &ctx,
                               &count)
                  .ok());
  EXPECT_EQ(count, n);
  EXPECT_TRUE(index.initialized());
  EXPECT_GT(ctx.stats.init_ns, 0);  // charged to the first query, once

  const auto sizes = index.ShardSizes();
  EXPECT_EQ(sizes.size(), index.num_shards());
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, n);
  // Quantile estimation keeps shards roughly balanced on unique data.
  for (size_t s : sizes) {
    EXPECT_GT(s, n / 16);
    EXPECT_LT(s, n / 2);
  }

  const auto bounds = index.ShardBounds();
  ASSERT_EQ(bounds.size(), index.num_shards() - 1);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));

  // A second full-domain query pays no init and touches pieces across
  // shards; its per-fragment stats roll up into the caller's context.
  QueryContext ctx2;
  int64_t sum = 0;
  ASSERT_TRUE(
      index.RangeSum(ValueRange{0, static_cast<Value>(n)}, &ctx2, &sum).ok());
  EXPECT_EQ(sum, static_cast<int64_t>(n) * (static_cast<int64_t>(n) - 1) / 2);
  EXPECT_EQ(ctx2.stats.init_ns, 0);
  EXPECT_GE(ctx2.stats.pieces_touched, index.num_shards());
  EXPECT_GT(index.NumPieces(), 0u);
}

TEST(PartitionedIndexTest, RowIdsAreGlobalAndFetchable) {
  // The acid test for rowID remapping: positional fetches into an aligned
  // second column must agree with the two-column oracle.
  const size_t n = 8000;
  Column a = Column::UniqueRandom("A", n, 14);
  Column b("B", {});
  for (size_t i = 0; i < n; ++i) b.Append(static_cast<Value>(i % 101));
  IndexConfig config = MethodConfig(IndexMethod::kCrack);
  config.partitions = 4;
  auto index = MakeIndex(&a, config);
  for (const RangeQuery rq : {RangeQuery{100, 4000, QueryType::kSum},
                              RangeQuery{3900, 4100, QueryType::kSum}}) {
    QueryContext ctx;
    int64_t got = 0;
    ASSERT_TRUE(FetchSum(index.get(), b, rq, &ctx, &got).ok());
    EXPECT_EQ(got, OracleFetchSum(a, b, rq));
  }
}

TEST(PartitionedIndexTest, SharedPoolFanOutDoesNotDeadlock) {
  // Sessions execute on the same pool the index fans out on; claim-based
  // fragment execution must make progress even when every pool worker is
  // itself a query. A tiny pool maximizes the saturation.
  const size_t n = 32000;
  Column column = Column::UniqueRandom("A", n, 15);
  ThreadPool pool(2);
  IndexConfig config = MethodConfig(IndexMethod::kCrack);
  config.partitions = 4;
  config.pool = &pool;
  auto index = MakeIndex(&column, config);

  auto session = Session::OnIndex(index.get(), &pool);
  std::vector<Query> batch;
  for (int i = 0; i < 64; ++i) {
    const Value lo = (i * 131) % (n - 2000);
    batch.push_back(Query::Sum("", "", lo, lo + 1999));
  }
  auto tickets = session->SubmitBatch(batch);
  RangeOracle oracle(column);
  for (size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].status().ok()) << i;
    EXPECT_EQ(tickets[i].result().sum,
              oracle.Sum(batch[i].range.lo, batch[i].range.hi))
        << i;
  }
}

/// Concurrent sessions, each confined to its own shard's value range: the
/// disjoint-range regime where partitioning removes all conflicts.
TEST(PartitionedConcurrencyTest, DisjointRangeClients) {
  const size_t n = 40000;
  const size_t kClients = 4;
  Column column = Column::UniqueRandom("A", n, 16);
  ThreadPool pool(kClients);
  IndexConfig config = MethodConfig(IndexMethod::kCrack);
  config.partitions = kClients;
  config.pool = &pool;
  auto index = MakeIndex(&column, config);
  RangeOracle oracle(column);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Client c queries only [c, c+1)/kClients of the domain.
      const Value base = static_cast<Value>(c * n / kClients);
      const Value span = static_cast<Value>(n / kClients);
      auto session = Session::OnIndex(index.get(), nullptr);
      for (int i = 0; i < 200; ++i) {
        const Value lo = base + (i * 97) % (span - 64);
        QueryResult r;
        if (!session->Execute(Query::Count("", "", lo, lo + 63), &r).ok() ||
            r.count != oracle.Count(lo, lo + 63)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto* part = static_cast<PartitionedIndex*>(index.get());
  EXPECT_TRUE(part->initialized());
}

/// Concurrent sessions over overlapping (boundary-straddling) ranges: the
/// regime where fragments of different queries land on the same shards and
/// the inner indexes' concurrency control takes over.
TEST(PartitionedConcurrencyTest, OverlappingRangeClients) {
  const size_t n = 40000;
  const size_t kClients = 4;
  Column column = Column::UniqueRandom("A", n, 17);
  ThreadPool pool(kClients);
  IndexConfig config = MethodConfig(IndexMethod::kCrack);
  config.partitions = 4;
  config.pool = &pool;
  auto index = MakeIndex(&column, config);
  RangeOracle oracle(column);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session = Session::OnIndex(index.get(), nullptr);
      for (int i = 0; i < 200; ++i) {
        // Wide ranges centered differently per client: every query spans
        // several shards and overlaps every other client's ranges.
        const Value lo = ((c * 71 + i * 131) % (n / 2));
        const Value hi = lo + static_cast<Value>(n / 3);
        QueryResult r;
        if (!session->Execute(Query::Sum("", "", lo, hi), &r).ok() ||
            r.sum != oracle.Sum(lo, hi)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace adaptidx
