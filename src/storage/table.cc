#include "storage/table.h"

namespace adaptidx {

Status Table::AddColumn(Column column) {
  if (by_name_.count(column.name()) > 0) {
    return Status::InvalidArgument("duplicate column name: " + column.name());
  }
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column length mismatch; columns of a table must be aligned");
  }
  by_name_[column.name()] = columns_.size();
  columns_.push_back(std::make_unique<Column>(std::move(column)));
  return Status::OK();
}

const Column* Table::GetColumn(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return columns_[it->second].get();
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c->name());
  return names;
}

}  // namespace adaptidx
