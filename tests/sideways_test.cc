#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cracking/sideways.h"
#include "engine/operators.h"
#include "test_util.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

class SidewaysTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = Column::UniqueRandom("A", 5000, 61);
    Column b("B", {});
    for (size_t i = 0; i < 5000; ++i) {
      b.Append(static_cast<Value>((i * 37) % 1000));
    }
    b_ = std::move(b);
    oracle_ = std::make_unique<RangeOracle>(a_);
  }

  Column a_;
  Column b_;
  std::unique_ptr<RangeOracle> oracle_;
};

TEST_F(SidewaysTest, LazyInitialization) {
  SidewaysIndex index(&a_, &b_);
  EXPECT_FALSE(index.initialized());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{10, 20}, &ctx, &count).ok());
  EXPECT_TRUE(index.initialized());
  EXPECT_GT(ctx.stats.init_ns, 0);
}

TEST_F(SidewaysTest, CountMatchesOracle) {
  SidewaysIndex index(&a_, &b_);
  Rng rng(62);
  for (int i = 0; i < 150; ++i) {
    Value lo = rng.UniformRange(-10, 5010);
    Value hi = rng.UniformRange(-10, 5010);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle_->Count(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(SidewaysTest, SumAMatchesOracle) {
  SidewaysIndex index(&a_, &b_);
  Rng rng(63);
  for (int i = 0; i < 100; ++i) {
    Value lo = rng.UniformRange(0, 5000);
    Value hi = rng.UniformRange(0, 5000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    int64_t sum;
    ASSERT_TRUE(index.RangeSum(ValueRange{lo, hi}, &ctx, &sum).ok());
    ASSERT_EQ(sum, oracle_->Sum(lo, hi));
  }
}

TEST_F(SidewaysTest, SumOtherMatchesFetchOracle) {
  SidewaysIndex index(&a_, &b_);
  Rng rng(64);
  for (int i = 0; i < 100; ++i) {
    Value lo = rng.UniformRange(0, 5000);
    Value hi = rng.UniformRange(0, 5000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    int64_t sum_b;
    ASSERT_TRUE(
        index.RangeSumOther(ValueRange{lo, hi}, &ctx, &sum_b).ok());
    ASSERT_EQ(sum_b, OracleFetchSum(a_, b_,
                                    RangeQuery{lo, hi, QueryType::kSum}));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(SidewaysTest, PairsSurviveReorganization) {
  SidewaysIndex index(&a_, &b_);
  Rng rng(65);
  for (int i = 0; i < 200; ++i) {
    const Value lo = rng.UniformRange(0, 4900);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, lo + 50}, &ctx, &count).ok());
  }
  // ValidateStructure rechecks (a, b, rowid) pairing against both columns.
  EXPECT_TRUE(index.ValidateStructure());
  EXPECT_GT(index.NumCracks(), 50u);
}

TEST_F(SidewaysTest, RowIdsCorrect) {
  SidewaysIndex index(&a_, &b_);
  QueryContext ctx;
  std::vector<RowId> ids;
  ASSERT_TRUE(index.RangeRowIds(ValueRange{1000, 1200}, &ctx, &ids).ok());
  ASSERT_EQ(ids.size(), 200u);
  for (RowId id : ids) {
    EXPECT_GE(a_[id], 1000);
    EXPECT_LT(a_[id], 1200);
  }
}

TEST_F(SidewaysTest, RepeatedQueryDoesNotRecrack) {
  SidewaysIndex index(&a_, &b_);
  QueryContext c1;
  int64_t sum;
  ASSERT_TRUE(index.RangeSumOther(ValueRange{100, 400}, &c1, &sum).ok());
  EXPECT_GT(c1.stats.cracks, 0u);
  QueryContext c2;
  ASSERT_TRUE(index.RangeSumOther(ValueRange{100, 400}, &c2, &sum).ok());
  EXPECT_EQ(c2.stats.cracks, 0u);
}

TEST_F(SidewaysTest, CrackInThreeUsedForFreshPiece) {
  SidewaysIndex index(&a_, &b_);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{2000, 3000}, &ctx, &count).ok());
  EXPECT_EQ(count, 1000u);
  EXPECT_EQ(ctx.stats.cracks, 2u);  // one crack-in-three pass, two bounds
  EXPECT_EQ(index.NumCracks(), 2u);
}

TEST_F(SidewaysTest, ConcurrentMixedQueries) {
  SidewaysIndex index(&a_, &b_);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(600 + t);
      for (int i = 0; i < 80 && ok.load(); ++i) {
        Value lo = rng.UniformRange(0, 5000);
        Value hi = rng.UniformRange(0, 5000);
        if (lo > hi) std::swap(lo, hi);
        QueryContext ctx;
        if (i % 2 == 0) {
          uint64_t count = 0;
          if (!index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok() ||
              count != oracle_->Count(lo, hi)) {
            ok.store(false);
          }
        } else {
          int64_t sum_b = 0;
          if (!index.RangeSumOther(ValueRange{lo, hi}, &ctx, &sum_b).ok() ||
              sum_b != OracleFetchSum(a_, b_,
                                      RangeQuery{lo, hi, QueryType::kSum})) {
            ok.store(false);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(SidewaysEdgeTest, DuplicatesInSelectionColumn) {
  Column a = Column::UniformRandom("A", 3000, 0, 30, 66);
  Column b("B", {});
  for (size_t i = 0; i < 3000; ++i) b.Append(static_cast<Value>(i));
  SidewaysIndex index(&a, &b);
  Rng rng(67);
  for (int i = 0; i < 60; ++i) {
    Value lo = rng.UniformRange(-2, 32);
    Value hi = rng.UniformRange(-2, 32);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    int64_t sum_b;
    ASSERT_TRUE(index.RangeSumOther(ValueRange{lo, hi}, &ctx, &sum_b).ok());
    ASSERT_EQ(sum_b, OracleFetchSum(a, b, RangeQuery{lo, hi, QueryType::kSum}));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(SidewaysEdgeTest, EmptyAndFullRanges) {
  Column a = Column::UniqueRandom("A", 100, 68);
  Column b = Column::Sequential("B", 100);
  SidewaysIndex index(&a, &b);
  QueryContext ctx;
  int64_t sum_b;
  ASSERT_TRUE(index.RangeSumOther(ValueRange{50, 50}, &ctx, &sum_b).ok());
  EXPECT_EQ(sum_b, 0);
  ASSERT_TRUE(index.RangeSumOther(ValueRange{-10, 1000}, &ctx, &sum_b).ok());
  EXPECT_EQ(sum_b, 99 * 100 / 2);
}

}  // namespace
}  // namespace adaptidx
