#include "durability/durable_index.h"

#include <chrono>
#include <utility>
#include <vector>

#include "core/cracking_index.h"
#include "durability/checkpoint.h"

namespace adaptidx {

namespace {
/// Checkpoint images kept on disk: the newest plus one fallback should the
/// newest fail its CRC at recovery.
constexpr size_t kCheckpointsKept = 2;
}  // namespace

Status DurableIndex::Open(const Column& seed, const IndexConfig& config,
                          const DurabilityOptions& opts,
                          LockManager* lock_manager,
                          const std::string& lock_resource,
                          std::unique_ptr<DurableIndex>* out) {
  if (opts.data_dir.empty()) {
    return Status::InvalidArgument("DurabilityOptions::data_dir is empty");
  }
  std::unique_ptr<DurableIndex> di(new DurableIndex(opts, seed.name()));
  Status s = RecoverIndex(opts.data_dir, seed, config, lock_manager,
                          lock_resource, &di->index_, &di->recovery_stats_);
  if (!s.ok()) return s;
  WalOptions wal_opts;
  wal_opts.fsync_policy = opts.fsync_policy;
  s = WriteAheadLog::Open(opts.data_dir, wal_opts,
                          di->recovery_stats_.next_lsn, &di->wal_);
  if (!s.ok()) return s;
  di->last_checkpoint_epoch_ = di->recovery_stats_.checkpoint_epoch;
  di->index_->SetCommitSink(di->wal_.get());
  if (opts.checkpoint_interval > 0) {
    di->checkpointer_ = std::thread(&DurableIndex::CheckpointLoop, di.get());
  }
  *out = std::move(di);
  return Status::OK();
}

DurableIndex::DurableIndex(DurabilityOptions opts, std::string column_name)
    : opts_(std::move(opts)), column_name_(std::move(column_name)) {}

DurableIndex::~DurableIndex() {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    stop_ = true;
    stop_cv_.notify_all();
  }
  if (checkpointer_.joinable()) checkpointer_.join();
  // Unbind before the WAL goes away; commits in flight at destruction time
  // are a caller bug (the server drains its pools first), but a null sink
  // keeps a straggler from touching freed memory.
  if (index_ != nullptr) index_->SetCommitSink(nullptr);
  if (wal_ != nullptr) wal_->Sync();
}

Status DurableIndex::Checkpoint(uint64_t* epoch_out) {
  std::lock_guard<std::mutex> ckpt(ckpt_mu_);
  // 1. Seal the log first: every record in a sealed segment now precedes
  // the epoch captured below, so post-install those segments are garbage.
  Status s = wal_->Rotate();
  if (!s.ok()) return s;

  CheckpointImage image;
  {
    // 2. One consistent epoch of the logical state. The pin also holds the
    // base column and wrapped index stable (a fold would drain us first).
    Snapshot snap = index_->CaptureSnapshot();
    if (!snap.valid()) {
      return Status::Aborted("could not pin a checkpoint snapshot");
    }
    // The image needs the FULL state at the pinned epoch — under
    // delta-chain publication `snap.version()` is only the consolidated
    // base, so fold the chain suffix into one flat view (a no-op copy when
    // the chain is empty).
    SideStoreVersion v = snap.Materialize();
    image.epoch = v.epoch;
    image.next_row_id = v.next_row_id;
    image.inserts = std::move(v.inserts);
    image.anti_matter = std::move(v.anti_matter);
    const Column* base = index_->base_column();
    image.column_name = base->name();
    image.base_values = base->values();
    // 3. The cracked state, captured beside live queries under piece read
    // latches. Physical reorganization is epoch-independent (cracks never
    // change logical content), so any tiling of this base is consistent
    // with epoch E.
    auto* cracking = dynamic_cast<CrackingIndex*>(index_->base_index());
    if (cracking != nullptr) {
      s = cracking->ExportAdaptedState(&image.adapted);
      if (!s.ok()) return s;
      image.has_adapted = !image.adapted.pieces.empty();
    }
  }

  // 4. Install, then retire what the image supersedes.
  s = WriteCheckpoint(opts_.data_dir, image);
  if (!s.ok()) return s;
  s = PruneCheckpoints(opts_.data_dir, kCheckpointsKept);
  if (!s.ok()) return s;
  // Truncate the WAL only below the OLDEST image still on disk: the
  // fallback is a usable recovery point only while the log still covers
  // everything after ITS epoch. Truncating to the new image's epoch here
  // would turn a corrupt newest checkpoint into silent data loss.
  const auto retained = ListCheckpoints(opts_.data_dir);
  const uint64_t horizon =
      retained.empty() ? image.epoch : retained.front().first;
  s = wal_->RemoveSegmentsBelow(horizon);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    last_checkpoint_epoch_ = image.epoch;
    ++checkpoints_taken_;
  }
  if (epoch_out != nullptr) *epoch_out = image.epoch;
  return Status::OK();
}

uint64_t DurableIndex::last_checkpoint_epoch() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return last_checkpoint_epoch_;
}

uint64_t DurableIndex::checkpoints_taken() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return checkpoints_taken_;
}

void DurableIndex::CheckpointLoop() {
  for (;;) {
    uint64_t since = 0;
    {
      std::unique_lock<std::mutex> lk(state_mu_);
      stop_cv_.wait_for(lk, std::chrono::milliseconds(100),
                        [&] { return stop_; });
      if (stop_) return;
      since = wal_->last_lsn() >= last_checkpoint_epoch_
                  ? wal_->last_lsn() - last_checkpoint_epoch_
                  : 0;
    }
    if (since >= opts_.checkpoint_interval) {
      // Failure here is not fatal to serving: the WAL still covers every
      // commit; the next tick (or an explicit call) retries.
      Checkpoint();
    }
  }
}

}  // namespace adaptidx
