#ifndef ADAPTIDX_DURABILITY_WAL_H_
#define ADAPTIDX_DURABILITY_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/commit_sink.h"
#include "storage/types.h"
#include "util/status.h"

namespace adaptidx {

/// \file
/// Group-commit write-ahead log of the durability subsystem.
///
/// On-disk layout: the log is a sequence of segment files named
/// `wal-<first_lsn>.log` in the data directory. Each segment is
///
///     8 bytes magic "ADIXWAL1" | u64 first_lsn | records...
///
/// and each record is
///
///     u32 payload_len | u32 crc32(payload) | payload
///
/// with the payload `u64 lsn | u8 op | i64 value | u32 row_id` (21 bytes)
/// encoded by the same strict codec as the wire protocol (util/wire.h).
/// Record validity is defined by the CRC alone: a crash mid-write leaves a
/// torn tail whose checksum cannot match, and recovery truncates the
/// newest segment at the first bad record. A bad record in any *older*
/// segment is real corruption (that segment was sealed by a rotation) and
/// recovery refuses to proceed past it silently.

/// \brief When an acknowledged commit is actually on disk.
enum class FsyncPolicy : uint8_t {
  /// One write+fsync per record: the classic force-log-at-commit
  /// discipline. Durable at ack; the baseline group commit beats.
  kAlways = 0,
  /// Group commit: the flusher drains all pending records with one write
  /// and one fsync, and wakes every waiter the batch covered. Durable at
  /// ack; cost amortized across concurrent committers.
  kGroup = 1,
  /// Write without fsync: durability is left to the OS page cache (data
  /// survives a process kill, not a power cut). WaitDurable returns
  /// immediately; benchmarks use it as the no-durability upper bound.
  kNone = 2,
};

/// \brief Tunables of a `WriteAheadLog`.
struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kGroup;
};

/// \brief Counters of one `WriteAheadLog` instance (all monotone since
/// open). Read via `stats()`; published to the server's STATS frame.
struct WalStats {
  uint64_t records_appended = 0;  ///< LogCommit calls
  uint64_t bytes_written = 0;     ///< record bytes handed to write(2)
  uint64_t fsync_count = 0;       ///< fdatasync calls issued
  uint64_t flush_batches = 0;     ///< flusher wake-ups that wrote anything
  uint64_t max_batch = 0;         ///< largest record count in one batch
  uint64_t rotations = 0;         ///< segments sealed by Rotate()
};

/// \brief One decoded log record (the recovery-side view).
struct WalRecord {
  uint64_t lsn = 0;
  CommitSink::OpType op = CommitSink::OpType::kInsert;
  Value value = 0;
  RowId row_id = 0;
};

/// \brief Group-commit write-ahead log; the `CommitSink` the engine binds
/// to an `UpdatableIndex`.
///
/// Write path: `LogCommit` runs under the index's writer latch — it
/// serializes the record into an in-memory pending buffer, assigns the
/// next LSN, and returns without any I/O. A dedicated flusher thread
/// drains the pending buffer: one write(2) per batch, then fsync per the
/// policy, then `durable_lsn` advances and every `WaitDurable` parked at
/// or below it wakes. Under `kAlways` the flusher writes and fsyncs each
/// record of the batch individually, so the policy honestly models
/// force-at-commit rather than silently group-committing.
///
/// Locking: `mu_` guards the pending buffer, LSN counters, and waiter
/// condition; `io_mu_` guards the segment file. The flusher swaps the
/// pending buffer out under `mu_`, drops it, performs I/O under `io_mu_`
/// only, then retakes `mu_` to publish durability — so committers are
/// never blocked behind disk writes, which is the entire point of group
/// commit. `Rotate` takes `mu_` (draining the pending buffer) and then
/// `io_mu_` in that order; the flusher never acquires `mu_` while holding
/// `io_mu_`, keeping the lock graph acyclic.
///
/// Thread-safety: fully synchronized; any number of committers may call
/// `LogCommit`/`WaitDurable` concurrently with one `Rotate` caller.
class WriteAheadLog : public CommitSink {
 public:
  /// \brief Opens (creating if absent) the log in `dir`, starting a new
  /// segment `wal-<next_lsn>.log`. `next_lsn` is one past the last LSN
  /// recovery replayed (1 on a fresh directory). Spawns the flusher.
  static Status Open(const std::string& dir, const WalOptions& opts,
                     uint64_t next_lsn, std::unique_ptr<WriteAheadLog>* out);

  /// \brief Stops the flusher after a final drain+sync (best effort).
  ~WriteAheadLog() override;

  // ---- CommitSink --------------------------------------------------------

  /// \brief Buffers one record and returns its LSN. No I/O; called under
  /// the index's writer latch.
  uint64_t LogCommit(OpType op, Value value, RowId row_id) override;

  /// \brief Blocks until `lsn` is durable per the fsync policy (returns
  /// immediately under kNone). Propagates a flusher write/sync failure.
  Status WaitDurable(uint64_t lsn) override;

  // ---- maintenance -------------------------------------------------------

  /// \brief Drains pending records, syncs, seals the current segment, and
  /// starts a fresh one at the next LSN. Called by the checkpointer
  /// *before* capturing its snapshot so every sealed segment is wholly
  /// covered by the checkpoint once it lands.
  Status Rotate();

  /// \brief Deletes sealed segments whose every record has lsn <= `lsn`
  /// (their first_lsn is <= `lsn` and so is the next segment's). The
  /// current segment is never deleted.
  Status RemoveSegmentsBelow(uint64_t lsn);

  /// \brief Forces everything buffered so far to disk (even under kNone).
  Status Sync();

  uint64_t last_lsn() const;     ///< \brief Highest LSN assigned.
  uint64_t durable_lsn() const;  ///< \brief Highest LSN known durable.
  WalStats stats() const;        ///< \brief Counter snapshot.

 private:
  WriteAheadLog(std::string dir, WalOptions opts, uint64_t next_lsn);

  /// Opens a fresh segment `wal-<first_lsn>.log` and writes its header.
  /// io_mu_ held.
  Status OpenSegmentLocked(uint64_t first_lsn);

  /// Flusher thread body: wait for pending records, drain, publish.
  void FlusherLoop();

  /// Waits until no claimed batch is still in flight (durable_lsn_ caught
  /// up to claimed_lsn_); false on a sticky I/O error. mu_ held via `lk`.
  bool AwaitInFlightBatchLocked(std::unique_lock<std::mutex>& lk);

  /// Writes `buf` to the segment and syncs per policy (or `force_sync`),
  /// accumulating byte/fsync counts into the out-params (accounted under
  /// mu_ by the caller — this method must not take mu_, see the .cc).
  /// io_mu_ held.
  Status WriteAndSyncLocked(const std::string& buf, bool force_sync,
                            uint64_t* bytes, uint64_t* syncs);

  const std::string dir_;
  const WalOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable flusher_cv_;  ///< pending work / shutdown
  std::condition_variable durable_cv_;  ///< durable_lsn advanced
  /// Serialized records not yet handed to the flusher, paired with the
  /// record count (for max_batch accounting).
  std::string pending_;
  uint64_t pending_records_ = 0;
  uint64_t next_lsn_;
  uint64_t durable_lsn_ = 0;
  uint64_t claimed_lsn_ = 0;  ///< highest LSN claimed by a drain (flusher,
                              ///< Sync, or Rotate) — write may be in flight
  Status io_error_;           ///< sticky first write/sync failure
  bool stop_ = false;
  WalStats stats_;

  std::mutex io_mu_;
  int fd_ = -1;
  uint64_t segment_first_lsn_ = 0;

  std::thread flusher_;
};

/// \brief Scan result of one segment file.
struct WalSegmentScan {
  uint64_t first_lsn = 0;          ///< from the segment header
  std::vector<WalRecord> records;  ///< CRC-valid prefix, in order
  size_t valid_bytes = 0;          ///< offset one past the last valid record
  bool torn = false;  ///< bytes beyond valid_bytes exist but fail CRC/format
};

/// \brief Reads one segment, accepting the longest valid prefix.
/// Corruption only for an unreadable/bad header (a header is written in
/// one small write; a torn header means the segment never held a record).
Status ScanWalSegment(const std::string& path, WalSegmentScan* out);

/// \brief Lists segment file paths in `dir` by ascending first_lsn.
std::vector<std::pair<uint64_t, std::string>> ListWalSegments(
    const std::string& dir);

}  // namespace adaptidx

#endif  // ADAPTIDX_DURABILITY_WAL_H_
