#ifndef ADAPTIDX_CRACKING_CRACKER_ARRAY_H_
#define ADAPTIDX_CRACKING_CRACKER_ARRAY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/column.h"
#include "storage/types.h"

namespace adaptidx {

/// \brief Physical layout of the cracker array (Section 5.2, Figure 7).
enum class ArrayLayout {
  /// One densely populated array of (rowID, value) pairs — the original
  /// database cracking design.
  kRowIdValuePairs,
  /// A pair of arrays: a values array and a rowIDs array — the layout used
  /// by the latest cracking release; gives better cache locality for
  /// operators that touch only one of the two.
  kPairOfArrays,
};

/// \brief A (rowID, value) entry of the pair layout.
struct CrackerEntry {
  RowId row_id;
  Value value;
};

/// \brief Accessor for the rowID-value-pairs layout; swaps move 12-byte
/// entries.
class PairAccessor {
 public:
  explicit PairAccessor(CrackerEntry* data) : data_(data) {}
  Value ValueAt(Position i) const { return data_[i].value; }
  RowId RowIdAt(Position i) const { return data_[i].row_id; }
  void Swap(Position i, Position j) { std::swap(data_[i], data_[j]); }

 private:
  CrackerEntry* data_;
};

/// \brief Accessor for the pair-of-arrays layout; swaps touch both arrays
/// but value-only scans stream a dense Value array.
class SplitAccessor {
 public:
  SplitAccessor(Value* values, RowId* row_ids)
      : values_(values), row_ids_(row_ids) {}
  Value ValueAt(Position i) const { return values_[i]; }
  RowId RowIdAt(Position i) const { return row_ids_[i]; }
  void Swap(Position i, Position j) {
    std::swap(values_[i], values_[j]);
    std::swap(row_ids_[i], row_ids_[j]);
  }

 private:
  Value* values_;
  RowId* row_ids_;
};

/// \brief The cracker array: an auxiliary copy of the indexed column that is
/// continuously physically reorganized (incrementally sorted) as a side
/// effect of query processing (Section 5.2).
///
/// The base column is never modified; the cracker array pairs each value
/// with its original rowID so qualifying tuples can be reconstructed
/// positionally from other columns of the table.
///
/// Not internally synchronized — callers serialize access with the column or
/// piece latches, which is the entire subject of the paper.
class CrackerArray {
 public:
  /// \brief Copies `column` into a fresh cracker array with rowIDs 0..n-1 in
  /// the requested layout. This is the "first touch" cost of cracking.
  CrackerArray(const Column& column, ArrayLayout layout);

  /// \brief Builds from explicit entries (used by hybrid initial partitions
  /// and tests).
  CrackerArray(std::vector<CrackerEntry> entries, ArrayLayout layout);

  size_t size() const { return size_; }
  ArrayLayout layout() const { return layout_; }

  Value ValueAt(Position i) const {
    return layout_ == ArrayLayout::kRowIdValuePairs ? pairs_[i].value
                                                    : values_[i];
  }
  RowId RowIdAt(Position i) const {
    return layout_ == ArrayLayout::kRowIdValuePairs ? pairs_[i].row_id
                                                    : row_ids_[i];
  }

  /// \brief Two-way crack over [begin, end); see CrackInTwo in
  /// crack_kernels.h. Dispatches once on layout, then runs the tight
  /// template kernel.
  Position CrackTwo(Position begin, Position end, Value pivot);

  /// \brief Three-way crack over [begin, end); see CrackInThree.
  std::pair<Position, Position> CrackThree(Position begin, Position end,
                                           Value lo, Value hi);

  /// \brief Fully sorts [begin, end) by value (used by the active strategy
  /// and hybrid final partitions).
  void SortRange(Position begin, Position end);

  /// \brief Counts values in [lo, hi) within [begin, end) without
  /// reorganizing.
  uint64_t ScanCountRange(Position begin, Position end, Value lo,
                          Value hi) const;

  /// \brief Sums values in [lo, hi) within [begin, end) without
  /// reorganizing.
  int64_t ScanSumRange(Position begin, Position end, Value lo, Value hi) const;

  /// \brief Sums every value in [begin, end) positionally.
  int64_t PositionalSumRange(Position begin, Position end) const;

  /// \brief Appends rowIDs of [begin, end) to `out` (positional fetch).
  void CollectRowIds(Position begin, Position end,
                     std::vector<RowId>* out) const;

  /// \brief In a sorted range, the offset of the first value >= v (binary
  /// search). Precondition: [begin, end) sorted.
  Position LowerBoundInSorted(Position begin, Position end, Value v) const;

 private:
  ArrayLayout layout_;
  size_t size_;
  // Exactly one representation is populated, chosen by layout_.
  std::vector<CrackerEntry> pairs_;
  std::vector<Value> values_;
  std::vector<RowId> row_ids_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CRACKING_CRACKER_ARRAY_H_
