#ifndef ADAPTIDX_ENGINE_QUERY_H_
#define ADAPTIDX_ENGINE_QUERY_H_

// The unified query descriptor moved into the core layer so the access
// method interface itself (`AdaptiveIndex::Execute`) is expressed in terms
// of it; this forwarding header keeps engine-level includes working.
#include "core/query.h"

#endif  // ADAPTIDX_ENGINE_QUERY_H_
