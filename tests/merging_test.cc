#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "merging/adaptive_merge.h"
#include "merging/segment_store.h"
#include "test_util.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

std::vector<CrackerEntry> SortedEntries(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  std::vector<CrackerEntry> out;
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(CrackerEntry{static_cast<RowId>(i), values[i]});
  }
  return out;
}

// ----------------------------------------------------------- SegmentStore

TEST(SegmentStoreTest, EmptyStore) {
  SegmentStore s;
  EXPECT_EQ(s.num_segments(), 0u);
  EXPECT_EQ(s.num_entries(), 0u);
  EXPECT_FALSE(s.Covers(0, 1));
  EXPECT_TRUE(s.Validate());
}

TEST(SegmentStoreTest, InsertAndDecompose) {
  SegmentStore s;
  s.Insert(10, 20, SortedEntries({11, 15, 19}));
  std::vector<SegmentStore::CoveredPart> covered;
  std::vector<ValueRange> gaps;
  s.Decompose(5, 25, &covered, &gaps);
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_EQ(covered[0].lo, 10);
  EXPECT_EQ(covered[0].hi, 20);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_TRUE(s.Validate());
}

TEST(SegmentStoreTest, CountAndSumInPart) {
  SegmentStore s;
  s.Insert(0, 100, SortedEntries({5, 10, 20, 50, 99}));
  std::vector<SegmentStore::CoveredPart> covered;
  std::vector<ValueRange> gaps;
  s.Decompose(10, 60, &covered, &gaps);
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_EQ(SegmentStore::CountIn(covered[0]), 3u);  // 10, 20, 50
  EXPECT_EQ(SegmentStore::SumIn(covered[0]), 80);
  std::vector<RowId> ids;
  SegmentStore::CollectRowIds(covered[0], &ids);
  EXPECT_EQ(ids.size(), 3u);
}

TEST(SegmentStoreTest, AdjacentSegmentsCoalesce) {
  SegmentStore s;
  s.Insert(0, 10, SortedEntries({1, 5}));
  s.Insert(10, 20, SortedEntries({12, 18}));
  EXPECT_EQ(s.num_segments(), 1u);
  EXPECT_TRUE(s.Covers(0, 20));
  EXPECT_EQ(s.num_entries(), 4u);
  EXPECT_TRUE(s.Validate());
}

TEST(SegmentStoreTest, CoalesceBothSides) {
  SegmentStore s;
  s.Insert(0, 10, SortedEntries({1}));
  s.Insert(20, 30, SortedEntries({25}));
  s.Insert(10, 20, SortedEntries({15}));
  EXPECT_EQ(s.num_segments(), 1u);
  EXPECT_TRUE(s.Covers(0, 30));
  EXPECT_TRUE(s.Validate());
}

TEST(SegmentStoreTest, DisjointSegmentsStaySeparate) {
  SegmentStore s;
  s.Insert(0, 10, SortedEntries({1}));
  s.Insert(20, 30, SortedEntries({25}));
  EXPECT_EQ(s.num_segments(), 2u);
  EXPECT_FALSE(s.Covers(0, 30));
  EXPECT_TRUE(s.Covers(0, 10));
}

TEST(SegmentStoreTest, EmptyCoverageSegment) {
  SegmentStore s;
  // A merged range with no qualifying records still counts as covered.
  s.Insert(10, 20, {});
  EXPECT_TRUE(s.Covers(12, 18));
  std::vector<SegmentStore::CoveredPart> covered;
  std::vector<ValueRange> gaps;
  s.Decompose(10, 20, &covered, &gaps);
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_EQ(SegmentStore::CountIn(covered[0]), 0u);
}

// ------------------------------------------------------ AdaptiveMerge

class AdaptiveMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    column_ = Column::UniqueRandom("A", 10000, 7);
    oracle_ = std::make_unique<RangeOracle>(column_);
  }

  MergeOptions SmallRuns() const {
    MergeOptions opts;
    opts.run_size = 1024;
    return opts;
  }

  Column column_;
  std::unique_ptr<RangeOracle> oracle_;
};

TEST_F(AdaptiveMergeTest, FirstQueryCreatesRuns) {
  AdaptiveMergeIndex index(&column_, SmallRuns());
  EXPECT_FALSE(index.initialized());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 200}, &ctx, &count).ok());
  EXPECT_EQ(count, 100u);
  EXPECT_TRUE(index.initialized());
  EXPECT_EQ(index.num_runs(), 10000u / 1024 + 1);
  EXPECT_GT(ctx.stats.init_ns, 0);
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(AdaptiveMergeTest, CountAndSumMatchOracle) {
  AdaptiveMergeIndex index(&column_, SmallRuns());
  Rng rng(3);
  for (int i = 0; i < 150; ++i) {
    Value lo = rng.UniformRange(0, 10000);
    Value hi = rng.UniformRange(0, 10000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    int64_t sum;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle_->Count(lo, hi));
    ASSERT_TRUE(index.RangeSum(ValueRange{lo, hi}, &ctx, &sum).ok());
    ASSERT_EQ(sum, oracle_->Sum(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(AdaptiveMergeTest, RepeatedRangeAnsweredFromFinalPartition) {
  AdaptiveMergeIndex index(&column_, SmallRuns());
  QueryContext ctx1;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{2000, 3000}, &ctx1, &count).ok());
  EXPECT_GT(ctx1.stats.cracks, 0u);  // merge step happened
  QueryContext ctx2;
  ASSERT_TRUE(index.RangeCount(ValueRange{2000, 3000}, &ctx2, &count).ok());
  EXPECT_EQ(ctx2.stats.cracks, 0u);  // fully covered: no merge
  EXPECT_EQ(count, 1000u);
}

TEST_F(AdaptiveMergeTest, ConvergesToFullyMerged) {
  AdaptiveMergeIndex index(&column_, SmallRuns());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{-10, 20000}, &ctx, &count).ok());
  EXPECT_EQ(count, 10000u);
  EXPECT_TRUE(index.FullyMerged());
  EXPECT_EQ(index.num_segments(), 1u);
}

TEST_F(AdaptiveMergeTest, SegmentsCoalesceAcrossQueries) {
  AdaptiveMergeIndex index(&column_, SmallRuns());
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{0, 1000}, &ctx, &count).ok());
  ASSERT_TRUE(index.RangeCount(ValueRange{1000, 2000}, &ctx, &count).ok());
  EXPECT_EQ(index.num_segments(), 1u);  // adjacent merges coalesced
}

TEST_F(AdaptiveMergeTest, RowIdsCorrect) {
  AdaptiveMergeIndex index(&column_, SmallRuns());
  QueryContext ctx;
  std::vector<RowId> ids;
  ASSERT_TRUE(index.RangeRowIds(ValueRange{500, 700}, &ctx, &ids).ok());
  ASSERT_EQ(ids.size(), 200u);
  for (RowId id : ids) {
    EXPECT_GE(column_[id], 500);
    EXPECT_LT(column_[id], 700);
  }
}

TEST_F(AdaptiveMergeTest, ConcurrentQueriesMatchOracle) {
  AdaptiveMergeIndex index(&column_, SmallRuns());
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 80 && ok.load(); ++i) {
        Value lo = rng.UniformRange(0, 10000);
        Value hi = rng.UniformRange(0, 10000);
        if (lo > hi) std::swap(lo, hi);
        QueryContext ctx;
        int64_t sum = 0;
        if (!index.RangeSum(ValueRange{lo, hi}, &ctx, &sum).ok() ||
            sum != oracle_->Sum(lo, hi)) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_F(AdaptiveMergeTest, EarlyTerminationUnderContentionStaysCorrect) {
  MergeOptions opts = SmallRuns();
  opts.early_termination = true;
  AdaptiveMergeIndex index(&column_, opts);
  std::atomic<bool> ok{true};
  std::atomic<uint64_t> skipped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(200 + t);
      for (int i = 0; i < 60 && ok.load(); ++i) {
        // Wide, heavily overlapping queries maximize merge contention.
        Value lo = rng.UniformRange(0, 5000);
        QueryContext ctx;
        uint64_t count = 0;
        if (!index.RangeCount(ValueRange{lo, lo + 5000}, &ctx, &count).ok() ||
            count != oracle_->Count(lo, lo + 5000)) {
          ok.store(false);
        }
        if (ctx.stats.refinement_skipped) skipped.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(AdaptiveMergeEdgeTest, SingleRun) {
  Column col = Column::UniqueRandom("A", 100, 9);
  MergeOptions opts;
  opts.run_size = 1000;  // one run holds everything
  AdaptiveMergeIndex index(&col, opts);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{10, 30}, &ctx, &count).ok());
  EXPECT_EQ(count, 20u);
  EXPECT_EQ(index.num_runs(), 1u);
}

TEST(AdaptiveMergeEdgeTest, DuplicateValues) {
  Column col = Column::UniformRandom("A", 5000, 0, 20, 11);
  RangeOracle oracle(col);
  MergeOptions opts;
  opts.run_size = 512;
  AdaptiveMergeIndex index(&col, opts);
  Rng rng(12);
  for (int i = 0; i < 60; ++i) {
    Value lo = rng.UniformRange(-2, 22);
    Value hi = rng.UniformRange(-2, 22);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

// -------------------------------------------- MVCC commit (Section 4.3)

TEST(AdaptiveMergeMvccTest, SingleThreadedCorrectness) {
  Column col = Column::UniqueRandom("A", 8000, 31);
  RangeOracle oracle(col);
  MergeOptions opts;
  opts.run_size = 1024;
  opts.mvcc_commit = true;
  AdaptiveMergeIndex index(&col, opts);
  Rng rng(32);
  for (int i = 0; i < 120; ++i) {
    Value lo = rng.UniformRange(0, 8000);
    Value hi = rng.UniformRange(0, 8000);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    int64_t sum;
    ASSERT_TRUE(index.RangeSum(ValueRange{lo, hi}, &ctx, &sum).ok());
    ASSERT_EQ(sum, oracle.Sum(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(AdaptiveMergeMvccTest, ConvergesLikeStandard) {
  Column col = Column::UniqueRandom("A", 4000, 33);
  MergeOptions opts;
  opts.run_size = 512;
  opts.mvcc_commit = true;
  AdaptiveMergeIndex index(&col, opts);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{-10, 9000}, &ctx, &count).ok());
  EXPECT_EQ(count, 4000u);
  EXPECT_TRUE(index.FullyMerged());
}

TEST(AdaptiveMergeMvccTest, ConcurrentOverlappingGathersStayCorrect) {
  // Many threads gather the same gaps concurrently under read latches; only
  // the short commits serialize. Losers must discard their duplicates.
  Column col = Column::UniqueRandom("A", 10000, 34);
  RangeOracle oracle(col);
  MergeOptions opts;
  opts.run_size = 1024;
  opts.mvcc_commit = true;
  AdaptiveMergeIndex index(&col, opts);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(700 + t);
      for (int i = 0; i < 60 && ok.load(); ++i) {
        // Overlap-heavy: everyone works on the same quarter of the domain.
        const Value lo = rng.UniformRange(0, 2500);
        QueryContext ctx;
        uint64_t count = 0;
        if (!index.RangeCount(ValueRange{lo, lo + 2500}, &ctx, &count).ok() ||
            count != oracle.Count(lo, lo + 2500)) {
          ok.store(false);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(AdaptiveMergeEdgeTest, MergedRangesNeverReadFromRunsAgain) {
  Column col = Column::UniqueRandom("A", 2000, 13);
  MergeOptions opts;
  opts.run_size = 256;
  AdaptiveMergeIndex index(&col, opts);
  QueryContext ctx;
  uint64_t count;
  // Merge [500, 1500), then query the overlapping [1000, 1800): the overlap
  // must come from the final partition, the rest triggers a new merge; no
  // double counting may occur.
  ASSERT_TRUE(index.RangeCount(ValueRange{500, 1500}, &ctx, &count).ok());
  EXPECT_EQ(count, 1000u);
  ASSERT_TRUE(index.RangeCount(ValueRange{1000, 1800}, &ctx, &count).ok());
  EXPECT_EQ(count, 800u);
  ASSERT_TRUE(index.RangeCount(ValueRange{0, 2000}, &ctx, &count).ok());
  EXPECT_EQ(count, 2000u);
}

}  // namespace
}  // namespace adaptidx
