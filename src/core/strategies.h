#ifndef ADAPTIDX_CORE_STRATEGIES_H_
#define ADAPTIDX_CORE_STRATEGIES_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace adaptidx {

/// \brief Tunables and transition rules of the optimistic piece-read path
/// (ConcurrencyMode::kOptimistic / kAdaptive).
///
/// kOptimistic consults only `max_retries`. kAdaptive additionally keeps a
/// per-piece contention score (Piece::contention): fallbacks raise it,
/// validated reads decay it, and a piece at or above `demote_threshold` is
/// *demoted* — its readers take the piece read latch instead of racing a
/// busy cracker. Demoted pieces probe the optimistic path every
/// `probe_period`-th read so they re-promote once the cracking front has
/// moved on. All transitions are pure functions of the observed score so
/// they can be unit-tested deterministically; the caller applies them with
/// relaxed atomics (lost updates only delay a transition, never break
/// correctness).
struct OptimisticReadPolicy {
  /// Failed seqlock validations tolerated per piece read before the reader
  /// falls back to the latched path (the anti-livelock bound `k`).
  int max_retries = 3;
  /// Contention score at or above which a piece reads pessimistically.
  int32_t demote_threshold = 8;
  /// Score added when a read exhausts its retries and falls back.
  int32_t fallback_penalty = 4;
  /// Ceiling on the score so a long contention burst cannot delay
  /// re-promotion unboundedly.
  int32_t contention_cap = 32;
  /// A demoted piece re-attempts the optimistic path every Nth read;
  /// 0 disables probing (demotion becomes permanent).
  uint32_t probe_period = 16;

  bool Demoted(int32_t contention) const {
    return contention >= demote_threshold;
  }
  /// Score after a fully validated optimistic read.
  int32_t AfterSuccess(int32_t contention) const {
    return contention > 0 ? contention - 1 : 0;
  }
  /// Score after a retry-exhausted fallback.
  int32_t AfterFallback(int32_t contention) const {
    return std::min(contention + fallback_penalty, contention_cap);
  }
  /// Whether a demoted piece's `tick`-th guarded read probes optimistically.
  bool ProbeNow(uint32_t tick) const {
    return probe_period != 0 && tick % probe_period == 0;
  }
};

/// \brief Refinement strategies from Section 7 ("Future Work"), implemented
/// here as configurable policies of the cracking index.
enum class RefinementStrategy {
  /// Standard cracking: every query cracks, blocking on write latches.
  kStandard,
  /// "Lazy": queries refrain from side effects under contention — refinement
  /// uses try-latches only and is skipped whenever the latch is busy,
  /// reducing write contention at the cost of slower refinement.
  kLazy,
  /// "Active": aggressively refine — pieces at or below a threshold are
  /// fully sorted instead of cracked, reaching the optimal state sooner and
  /// thereby removing future conflict opportunities.
  kActive,
  /// "Dynamic": switch between lazy and active based on the observed
  /// conflict rate — high contention behaves lazily, low contention behaves
  /// actively.
  kDynamic,
};

std::string ToString(RefinementStrategy s);

/// \brief Per-crack directive produced by the policy.
struct RefinementDirective {
  bool try_only = false;    ///< use TryWriteLock; skip refinement when busy
  bool sort_piece = false;  ///< sort the piece instead of cracking it
  /// The sort was forced by the coarse-granular floor (min_piece_size), not
  /// by the refinement strategy: the piece is at or below the minimum piece
  /// size, so instead of splitting it further — growing the piece map — it
  /// is sorted in place and never reorganized again. Set only together with
  /// sort_piece.
  bool coarse = false;
};

/// \brief Runtime policy object consulted before each refinement action.
///
/// For kDynamic it keeps an exponentially decayed conflict score fed by
/// `OnConflict`/`OnSuccess`: above `kHighContention` the policy behaves like
/// kLazy; below `kLowContention` like kActive; in between like kStandard.
class RefinementPolicy {
 public:
  /// `min_piece_size` is the coarse-granular cracking floor: a piece at or
  /// below it is sorted instead of split regardless of strategy, capping
  /// piece-map growth (0 disables the floor).
  RefinementPolicy(RefinementStrategy strategy, size_t sort_piece_threshold,
                   size_t min_piece_size = 0);

  /// \brief Decides how to refine a piece of `piece_size` elements.
  RefinementDirective OnCrack(size_t piece_size) const;

  /// \brief Feeds a blocked/failed latch acquisition into the contention
  /// estimate (dynamic strategy).
  void OnConflict();

  /// \brief Feeds an uncontended acquisition into the contention estimate.
  void OnSuccess();

  RefinementStrategy strategy() const { return strategy_; }
  size_t sort_piece_threshold() const { return sort_piece_threshold_; }
  size_t min_piece_size() const { return min_piece_size_; }

  /// \brief Current contention score in [0, 1]; ~fraction of recent
  /// refinements that hit contention.
  double ContentionScore() const;

 private:
  static constexpr double kHighContention = 0.25;
  static constexpr double kLowContention = 0.05;
  /// Decay denominator: each observation moves the score by 1/kWindow of
  /// the distance to the observed outcome.
  static constexpr double kWindow = 64.0;

  const RefinementStrategy strategy_;
  const size_t sort_piece_threshold_;
  const size_t min_piece_size_;
  /// Fixed-point (x 1e6) decayed conflict score, updated with CAS.
  mutable std::atomic<int64_t> score_micros_{0};
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_STRATEGIES_H_
