#ifndef ADAPTIDX_CORE_ADAPTIVE_INDEX_H_
#define ADAPTIDX_CORE_ADAPTIVE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "latch/latch_stats.h"
#include "storage/types.h"
#include "util/status.h"

namespace adaptidx {

/// \brief Per-query instrumentation, filled in by index implementations.
///
/// The fields mirror the paper's measurements: `crack_ns` is the "index
/// refinement" series of Figure 15, `wait_ns` the "wait time" series
/// (all blocked latch acquisitions, write and read), and `conflicts` the
/// count plotted conceptually in Figure 1 (right).
struct QueryStats {
  int64_t response_ns = 0;  ///< end-to-end query latency
  int64_t wait_ns = 0;      ///< time blocked on latches
  int64_t crack_ns = 0;     ///< time spent refining under write latches
  int64_t init_ns = 0;      ///< one-off index initialization charged here
  int64_t read_ns = 0;      ///< time reading data under read latches
  uint64_t conflicts = 0;   ///< blocked latch acquisitions
  uint64_t cracks = 0;      ///< crack/merge/sort refinement actions applied
  uint64_t pieces_touched = 0;       ///< pieces read or cracked
  bool refinement_skipped = false;   ///< conflict avoidance fired
  int64_t start_ns = 0;     ///< wall-clock start (sequence ordering)
  int64_t finish_ns = 0;    ///< wall-clock finish
};

/// \brief Carried through every query execution; owns the stats and
/// identifies the client/transaction for lock-manager interplay.
///
/// Contexts created through a `Session` carry the full identity triple:
/// the session that submitted the query, the client it belongs to, and the
/// user-transaction id its update operations lock under.
struct QueryContext {
  QueryStats stats;
  uint32_t client_id = 0;
  uint64_t txn_id = 0;
  uint32_t session_id = 0;  ///< issuing session; 0 outside the session API

  /// \brief Builds the latch acquisition sink wired to this query's stats
  /// and the index-wide aggregate.
  LatchAcquireContext LatchCtx(LatchStats* global) {
    return LatchAcquireContext{global, &stats.wait_ns, &stats.conflicts};
  }
};

/// \brief Abstract access method evaluated in the paper's experiments: plain
/// scan, full index (sort), database cracking, adaptive merging, hybrid
/// crack-sort, and the partitioned-B-tree realization of adaptive merging
/// all implement this interface.
///
/// Semantics: the index answers over a fixed base column (read-only user
/// data); `RangeCount`/`RangeSum` are the paper's Q1/Q2 templates with the
/// predicate normalized to the half-open range [lo, hi). All methods are
/// thread-safe; adaptive implementations may refine their physical structure
/// as a side effect under the concurrency control being studied.
class AdaptiveIndex {
 public:
  virtual ~AdaptiveIndex() = default;

  /// \brief Short method name used in benchmark output ("scan", "sort",
  /// "crack", ...).
  virtual std::string Name() const = 0;

  /// \brief Q1: `select count(*) from R where lo <= A < hi`.
  virtual Status RangeCount(const ValueRange& range, QueryContext* ctx,
                            uint64_t* count) = 0;

  /// \brief Q2: `select sum(A) from R where lo <= A < hi`.
  virtual Status RangeSum(const ValueRange& range, QueryContext* ctx,
                          int64_t* sum) = 0;

  /// \brief Materializes the rowIDs of qualifying tuples (the positional
  /// intermediate of Figure 6, used to fetch other columns). Optional.
  virtual Status RangeRowIds(const ValueRange& range, QueryContext* ctx,
                             std::vector<RowId>* row_ids) {
    (void)range;
    (void)ctx;
    (void)row_ids;
    return Status::NotSupported(Name() + " does not materialize rowIDs");
  }

  /// \brief Number of physical pieces/partitions currently in the index;
  /// 1 for non-adaptive methods. Diagnostics only.
  virtual size_t NumPieces() const { return 1; }

  /// \brief Index-wide latch statistics.
  const LatchStats& latch_stats() const { return latch_stats_; }
  LatchStats* mutable_latch_stats() { return &latch_stats_; }

 protected:
  LatchStats latch_stats_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_ADAPTIVE_INDEX_H_
