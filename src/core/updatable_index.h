#ifndef ADAPTIDX_CORE_UPDATABLE_INDEX_H_
#define ADAPTIDX_CORE_UPDATABLE_INDEX_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/commit_sink.h"
#include "core/index_factory.h"
#include "core/snapshot.h"
#include "lock/lock_manager.h"

namespace adaptidx {

/// \brief Read-write layer over an adaptive index, built on differential
/// files (Section 4.2): "adaptive merging relies on a form of differential
/// files for high update rates ... updates and deletions may be applied
/// immediately in place or they may be deferred by insertion of
/// 'anti-matter' (deletion markers)".
///
/// Design:
///  - The base column stays immutable, so the wrapped adaptive index keeps
///    refining it with latch-only system transactions, untouched by updates.
///  - Insertions accumulate in a value-ordered side store; deletions become
///    anti-matter markers (deleting a still-pending insertion cancels it
///    directly).
///  - Queries combine the base index's answer with the differentials under
///    a short shared latch — or, with snapshot reads (below), against a
///    pinned immutable version with no side-table latch held at all.
///  - `Checkpoint()` is a maintenance system transaction that folds the
///    differentials into a fresh base column, rebuilds the adaptive index
///    from scratch (re-entering state 4 of Figure 5), and re-assigns row
///    ids — the rebuild "can exploit knowledge gained during earlier query
///    execution" only in the sense that queries will re-crack it adaptively.
///
/// Transactional interplay (Section 3.3): when a LockManager is configured,
/// every update runs as a *user transaction* taking an exclusive key lock
/// under the column resource. While such locks are held, the wrapped
/// cracking index's refinement probe sees the conflict and forgoes
/// optimization; queries still answer correctly by scanning.
///
/// MVCC snapshot reads (Section 4.3: "merge steps can run as multi-version
/// system transactions"): every committed update advances a monotonically
/// increasing `commit_epoch()`. With `IndexConfig::snapshot_reads` enabled
/// the writer additionally publishes each commit to the version chain —
/// by default one O(1) `SideStoreDelta` node (op, value, rowID, epoch)
/// linked onto the current version, periodically consolidated into a flat
/// `SideStoreVersion` so readers never fold an unbounded suffix
/// (`IndexConfig::snapshot_publication` selects the O(pending) copy-chain
/// baseline instead). A query whose context sets
/// `QueryContext::snapshot_reads` captures a `Snapshot` (one short pin,
/// O(1)) and answers count/sum/rowIDs/minmax against exactly that epoch
/// *without holding the side-table latch during the read* — a long
/// analytical scan no longer blocks the update stream. A query carrying a
/// `QueryContext::snapshot_scope` instead reuses the scope's pinned epoch
/// across every query of the scope (transactional repeatable reads).
/// Version and delta reclamation is epoch-based — state is dropped once no
/// pin can observe it — and `Checkpoint()` drains outstanding snapshots
/// before swapping the base (so a thread must not checkpoint while holding
/// its own snapshot).
///
/// Thread-safety: all methods may be called concurrently from any number
/// of threads; updates serialize on an internal writer latch, reads are
/// shared (latched path) or latch-free (snapshot path).
///
/// Observability: `latch_stats()` of this wrapper reports the *side-table*
/// latch (read/write acquisitions with blocked wait time — the
/// reader/writer interference snapshot reads remove) plus the
/// snapshot-read/epoch-lag counters; the wrapped index accounts its own
/// piece/column latch traffic separately under
/// `base_index()->latch_stats()`.
class UpdatableIndex : public AdaptiveIndex {
 public:
  /// \brief Takes ownership of the base data. `config` selects and
  /// configures the wrapped adaptive method. When `lock_manager` is given,
  /// it is wired into both the update path (user transactions) and, for
  /// cracking, the refinement conflict probe on `lock_resource`.
  UpdatableIndex(Column base, IndexConfig config,
                 LockManager* lock_manager = nullptr,
                 std::string lock_resource = "");

  /// \brief Drains outstanding snapshots — blocks until every `Snapshot`
  /// of this index is released — so a live pin can never dangle into a
  /// destroyed index (a released pin's destructor touches nothing of the
  /// index). Like `Checkpoint()`, never destroy the index on a thread
  /// holding its own snapshot.
  ~UpdatableIndex() override;

  /// \brief "updatable(<wrapped method>)". Thread-safe.
  std::string Name() const override;

  /// \brief Inserts a new tuple with value `v` as user transaction
  /// `ctx->txn_id`; a fresh row id is assigned and returned via `*row_id`
  /// (optional). Commits one epoch; thread-safe.
  Status Insert(Value v, QueryContext* ctx, RowId* row_id = nullptr);

  /// \brief Deletes the tuple (`v`, `row_id`) by planting anti-matter (or
  /// cancelling a pending insertion). NotFound when no such live tuple
  /// exists. A successful delete commits one epoch; thread-safe.
  Status Delete(Value v, RowId row_id, QueryContext* ctx);

  /// \brief Folds differentials into a fresh base column and rebuilds the
  /// adaptive index; row ids are re-assigned (a rebuild, as in dropping and
  /// re-creating an optional index, Section 4.2). Bumps the snapshot base
  /// generation and *drains* — blocks until every outstanding `Snapshot` of
  /// this index is released — before taking the side-table latch and
  /// swapping the base, so held snapshots stay valid and pin-holding
  /// threads remain free to use the index (updates, latched reads) while
  /// the drain waits. The one forbidden shape is a thread waiting on its
  /// own pin: never call `Checkpoint()` while holding a snapshot of this
  /// index on the same thread (self-deadlock).
  Status Checkpoint();

  // ---- snapshot reads ---------------------------------------------------

  /// \brief Pins a consistent view at the current commit epoch. O(1) when
  /// `IndexConfig::snapshot_reads` maintains the version chain; otherwise
  /// the differentials are materialized on demand under a short shared
  /// latch (O(pending)). Thread-safe; release the snapshot promptly.
  Snapshot CaptureSnapshot() const;

  /// \brief Answers `query` against `snapshot` — repeatable: the same
  /// snapshot always yields the identical result regardless of concurrent
  /// commits. Holds no side-table latch during the read. kSumOther is
  /// NotSupported (no second column); an invalid snapshot is
  /// InvalidArgument. Thread-safe.
  Status ExecuteSnapshot(const Query& query, const Snapshot& snapshot,
                         QueryContext* ctx, QueryResult* result);

  /// \brief Monotonic count of committed updates (0 = pristine base; the
  /// checkpoint fold also commits one epoch). Thread-safe, lock-free read.
  uint64_t commit_epoch() const {
    return commit_epoch_.load(std::memory_order_acquire);
  }

  /// \brief Version-chain bookkeeping (active pins, retired/reclaimed
  /// version counters) for tests and benchmarks. Thread-safe.
  const SnapshotManager& snapshots() const { return snapshots_; }

  // ---- durability hooks -------------------------------------------------

  /// \brief Attaches (or detaches with nullptr) the write-ahead sink. Every
  /// subsequent committed Insert/Delete/Checkpoint is logged at its commit
  /// point (under the writer latch, before the epoch advances) and
  /// acknowledged only after `CommitSink::WaitDurable` returns. Call while
  /// no updates are in flight (open/recovery time); thread-safe.
  void SetCommitSink(CommitSink* sink);

  /// \brief Overwrites the differential state wholesale — the recovery
  /// entry point, called once after construction (from a checkpoint image)
  /// and before any update/query traffic. `inserts`/`anti_matter` must be
  /// (value, rowID)-sorted as a checkpoint captured them; `next_row_id`
  /// and `epoch` resume the id sequence and commit epoch of the captured
  /// state so WAL replay reproduces the original run exactly. Thread-safe
  /// but not meant for concurrent use.
  void RestoreState(const std::vector<std::pair<Value, RowId>>& inserts,
                    const std::vector<std::pair<Value, RowId>>& anti_matter,
                    RowId next_row_id, uint64_t epoch);

  // ---- introspection ---------------------------------------------------

  /// \brief Logical row count (base − anti-matter + pending inserts).
  /// Thread-safe.
  size_t num_rows() const;

  /// \brief Pending (not yet checkpointed) insertions. Thread-safe.
  size_t pending_inserts() const;

  /// \brief Pending anti-matter markers. Thread-safe.
  size_t pending_deletes() const;

  /// \brief The wrapped adaptive index (for inspection in tests/benchmarks).
  /// Not stable across `Checkpoint()`.
  AdaptiveIndex* base_index() { return index_.get(); }

  /// \brief The immutable base column. Not stable across `Checkpoint()`;
  /// safe to read while a `Snapshot` of this index is pinned (the pin
  /// blocks the base swap).
  const Column* base_column() const { return base_.get(); }

  /// \brief Pieces of the wrapped index. Thread-safe.
  size_t NumPieces() const override { return index_->NumPieces(); }

 protected:
  /// \brief Dispatches to the snapshot path when the context carries a
  /// `snapshot_scope` (reusing the scope's pinned epoch) or sets
  /// `snapshot_reads` (capturing a fresh per-query snapshot), to the
  /// latched shared-side-table path otherwise.
  Status ExecuteImpl(const Query& query, QueryContext* ctx,
                     QueryResult* result) override;

 private:
  /// Re-wires config/lock settings and builds the wrapped index. Requires
  /// mu_ held exclusively (or construction).
  void RebuildIndexLocked();

  /// Materializes the current differential state as an immutable version
  /// stamped with the current commit epoch. mu_ held (shared suffices).
  std::shared_ptr<SideStoreVersion> MaterializeVersionLocked() const;

  /// Commits one epoch and, when the version chain is maintained,
  /// publishes the commit — one O(1) delta node describing (`op`, `v`,
  /// `row_id`) in delta-chain mode (consolidating when the chain reaches
  /// the adaptive threshold), a full flat copy in copy-chain mode.
  /// Requires mu_ held exclusively.
  void CommitEpochLocked(SideStoreDelta::Op op, Value v, RowId row_id);

  /// Chain length at which the next commit consolidates:
  /// min(consolidate_max, max(consolidate_min, pending/8)). Requires mu_
  /// held (shared suffices).
  size_t ConsolidateThresholdLocked() const;

  IndexConfig config_;
  LockManager* lock_manager_;
  std::string lock_resource_;

  mutable std::shared_mutex mu_;
  std::unique_ptr<Column> base_;
  std::unique_ptr<AdaptiveIndex> index_;
  /// Pending insertions, value-ordered: value -> row id.
  std::multimap<Value, RowId> inserts_;
  /// Anti-matter markers against base rows, ordered by (value, row id).
  std::set<std::pair<Value, RowId>> anti_matter_;
  RowId next_row_id_;

  /// Write-ahead sink; nullptr when the index is not durable. Written at
  /// open/recovery time, read at every commit point under mu_.
  CommitSink* sink_ = nullptr;

  /// Committed-update counter; written under mu_ exclusive, read lock-free
  /// (epoch-lag accounting).
  std::atomic<uint64_t> commit_epoch_{0};
  /// Version chain + snapshot registry (drain, epoch reclamation).
  mutable SnapshotManager snapshots_;
};

}  // namespace adaptidx

#endif  // ADAPTIDX_CORE_UPDATABLE_INDEX_H_
