#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cracking_index.h"
#include "lock/lock_manager.h"
#include "test_util.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

constexpr size_t kRows = 4000;

// ------------------------------------------ Parameterized correctness

struct CorrectnessParam {
  ConcurrencyMode mode;
  ArrayLayout layout;
  bool crack_in_three;
  const char* name;
};

class CrackingCorrectnessTest
    : public ::testing::TestWithParam<CorrectnessParam> {
 protected:
  void SetUp() override {
    column_ = Column::UniqueRandom("A", kRows, 42);
    oracle_ = std::make_unique<RangeOracle>(column_);
  }

  CrackingOptions Options() const {
    CrackingOptions opts;
    opts.mode = GetParam().mode;
    opts.layout = GetParam().layout;
    opts.use_crack_in_three = GetParam().crack_in_three;
    return opts;
  }

  Column column_;
  std::unique_ptr<RangeOracle> oracle_;
};

TEST_P(CrackingCorrectnessTest, CountMatchesOracleOverRandomQueries) {
  CrackingIndex index(&column_, Options());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Value lo = rng.UniformRange(-10, kRows + 10);
    Value hi = rng.UniformRange(-10, kRows + 10);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count = 0;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle_->Count(lo, hi)) << "query [" << lo << "," << hi
                                             << ")";
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_P(CrackingCorrectnessTest, SumMatchesOracleOverRandomQueries) {
  CrackingIndex index(&column_, Options());
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    Value lo = rng.UniformRange(0, kRows);
    Value hi = rng.UniformRange(0, kRows);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    int64_t sum = 0;
    ASSERT_TRUE(index.RangeSum(ValueRange{lo, hi}, &ctx, &sum).ok());
    ASSERT_EQ(sum, oracle_->Sum(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST_P(CrackingCorrectnessTest, RepeatedQueriesStayCorrect) {
  CrackingIndex index(&column_, Options());
  for (int rep = 0; rep < 3; ++rep) {
    QueryContext ctx;
    uint64_t count = 0;
    ASSERT_TRUE(
        index.RangeCount(ValueRange{1000, 2000}, &ctx, &count).ok());
    EXPECT_EQ(count, 1000u);
    if (rep > 0) {
      // Bounds already cracked: the repeat performs no refinement.
      EXPECT_EQ(ctx.stats.cracks, 0u);
    }
  }
}

TEST_P(CrackingCorrectnessTest, RowIdsMatchSemantics) {
  CrackingIndex index(&column_, Options());
  QueryContext ctx;
  std::vector<RowId> ids;
  ASSERT_TRUE(index.RangeRowIds(ValueRange{100, 300}, &ctx, &ids).ok());
  ASSERT_EQ(ids.size(), 200u);
  for (RowId id : ids) {
    EXPECT_GE(column_[id], 100);
    EXPECT_LT(column_[id], 300);
  }
  // Every qualifying row appears exactly once.
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndLayouts, CrackingCorrectnessTest,
    ::testing::Values(
        CorrectnessParam{ConcurrencyMode::kNone, ArrayLayout::kPairOfArrays,
                         true, "none_split_c3"},
        CorrectnessParam{ConcurrencyMode::kNone,
                         ArrayLayout::kRowIdValuePairs, false,
                         "none_pairs_c2"},
        CorrectnessParam{ConcurrencyMode::kColumnLatch,
                         ArrayLayout::kPairOfArrays, true, "column_split_c3"},
        CorrectnessParam{ConcurrencyMode::kColumnLatch,
                         ArrayLayout::kRowIdValuePairs, false,
                         "column_pairs_c2"},
        CorrectnessParam{ConcurrencyMode::kPieceLatch,
                         ArrayLayout::kPairOfArrays, true, "piece_split_c3"},
        CorrectnessParam{ConcurrencyMode::kPieceLatch,
                         ArrayLayout::kPairOfArrays, false, "piece_split_c2"},
        CorrectnessParam{ConcurrencyMode::kPieceLatch,
                         ArrayLayout::kRowIdValuePairs, true,
                         "piece_pairs_c3"}),
    [](const auto& info) { return info.param.name; });

// ------------------------------------------------- Lifecycle and stats

TEST(CrackingIndexTest, LazyInitialization) {
  Column col = Column::UniqueRandom("A", 1000, 1);
  CrackingIndex index(&col);
  EXPECT_FALSE(index.initialized());
  EXPECT_EQ(index.NumPieces(), 0u);
  QueryContext ctx;
  uint64_t count = 0;
  ASSERT_TRUE(index.RangeCount(ValueRange{10, 20}, &ctx, &count).ok());
  EXPECT_TRUE(index.initialized());
  EXPECT_GT(ctx.stats.init_ns, 0);
  // Subsequent queries pay no initialization.
  QueryContext ctx2;
  ASSERT_TRUE(index.RangeCount(ValueRange{30, 40}, &ctx2, &count).ok());
  EXPECT_EQ(ctx2.stats.init_ns, 0);
}

TEST(CrackingIndexTest, CracksAndPiecesGrowWithQueries) {
  Column col = Column::UniqueRandom("A", 4000, 2);
  CrackingIndex index(&col);
  Rng rng(3);
  size_t prev_pieces = 0;
  for (int i = 0; i < 50; ++i) {
    const Value lo = rng.UniformRange(0, 3000);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(
        index.RangeCount(ValueRange{lo, lo + 400}, &ctx, &count).ok());
    EXPECT_GE(index.NumPieces(), prev_pieces);  // pieces only split
    prev_pieces = index.NumPieces();
  }
  EXPECT_GT(index.NumCracks(), 20u);
  EXPECT_EQ(index.NumPieces(), index.NumCracks() + 1);
}

TEST(CrackingIndexTest, PieceSizesSumToArraySize) {
  Column col = Column::UniqueRandom("A", 2000, 4);
  CrackingIndex index(&col);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Value lo = rng.UniformRange(0, 1500);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(
        index.RangeCount(ValueRange{lo, lo + 100}, &ctx, &count).ok());
  }
  auto sizes = index.PieceSizes();
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, 2000u);
}

TEST(CrackingIndexTest, FirstQueryCrackTimeDominatesLater) {
  // The adaptive property: refinement touches ever smaller pieces, so crack
  // time per query trends down (Figure 15's crack series).
  Column col = Column::UniqueRandom("A", 100000, 6);
  CrackingIndex index(&col);
  Rng rng(7);
  int64_t first_crack = 0;
  int64_t late_crack_total = 0;
  const int kLate = 20;
  for (int i = 0; i < 100; ++i) {
    const Value lo = rng.UniformRange(0, 90000);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(
        index.RangeCount(ValueRange{lo, lo + 1000}, &ctx, &count).ok());
    if (i == 0) first_crack = ctx.stats.crack_ns;
    if (i >= 100 - kLate) late_crack_total += ctx.stats.crack_ns;
  }
  EXPECT_GT(first_crack, late_crack_total / kLate);
}

TEST(CrackingIndexTest, EmptyRangeIsZeroWithoutInit) {
  Column col = Column::UniqueRandom("A", 100, 8);
  CrackingIndex index(&col);
  QueryContext ctx;
  uint64_t count = 99;
  ASSERT_TRUE(index.RangeCount(ValueRange{50, 50}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
  ASSERT_TRUE(index.RangeCount(ValueRange{60, 40}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
}

TEST(CrackingIndexTest, FullDomainAndBeyond) {
  Column col = Column::UniqueRandom("A", 500, 9);
  CrackingIndex index(&col);
  QueryContext ctx;
  uint64_t count;
  int64_t sum;
  ASSERT_TRUE(index.RangeCount(ValueRange{-100, 1000}, &ctx, &count).ok());
  EXPECT_EQ(count, 500u);
  ASSERT_TRUE(index.RangeSum(ValueRange{-100, 1000}, &ctx, &sum).ok());
  EXPECT_EQ(sum, 499 * 500 / 2);
  // Entirely outside the domain.
  ASSERT_TRUE(index.RangeCount(ValueRange{1000, 2000}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
  ASSERT_TRUE(index.RangeCount(ValueRange{-50, -10}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
}

TEST(CrackingIndexTest, SingleElementColumn) {
  Column col("A", {42});
  CrackingIndex index(&col);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{0, 100}, &ctx, &count).ok());
  EXPECT_EQ(count, 1u);
  ASSERT_TRUE(index.RangeCount(ValueRange{43, 100}, &ctx, &count).ok());
  EXPECT_EQ(count, 0u);
  ASSERT_TRUE(index.RangeCount(ValueRange{42, 43}, &ctx, &count).ok());
  EXPECT_EQ(count, 1u);
}

TEST(CrackingIndexTest, DuplicateHeavyColumn) {
  Column col = Column::UniformRandom("A", 3000, 0, 10, 10);
  RangeOracle oracle(col);
  CrackingIndex index(&col);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    Value lo = rng.UniformRange(-1, 11);
    Value hi = rng.UniformRange(-1, 11);
    if (lo > hi) std::swap(lo, hi);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, hi}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, hi));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(CrackingIndexTest, AlreadySortedColumn) {
  Column col = Column::Sequential("A", 1000);
  RangeOracle oracle(col);
  CrackingIndex index(&col);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{250, 750}, &ctx, &count).ok());
  EXPECT_EQ(count, 500u);
  EXPECT_TRUE(index.ValidateStructure());
}

// ------------------------------------------------- Strategy variations

TEST(CrackingStrategyTest, ActiveStrategySortsSmallPieces) {
  Column col = Column::UniqueRandom("A", 4000, 12);
  RangeOracle oracle(col);
  CrackingOptions opts;
  opts.strategy = RefinementStrategy::kActive;
  opts.sort_piece_threshold = 512;
  CrackingIndex index(&col, opts);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    Value lo = rng.UniformRange(0, 3900);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, lo + 50}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, lo + 50));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(CrackingStrategyTest, LazySingleThreadedStillRefines) {
  // With no contention, try-latches always succeed, so the lazy strategy
  // refines exactly like the standard one.
  Column col = Column::UniqueRandom("A", 2000, 14);
  CrackingOptions opts;
  opts.strategy = RefinementStrategy::kLazy;
  CrackingIndex index(&col, opts);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{500, 700}, &ctx, &count).ok());
  EXPECT_EQ(count, 200u);
  EXPECT_GT(index.NumCracks(), 0u);
  EXPECT_FALSE(ctx.stats.refinement_skipped);
}

TEST(CrackingStrategyTest, DynamicStrategyCorrect) {
  Column col = Column::UniqueRandom("A", 2000, 15);
  RangeOracle oracle(col);
  CrackingOptions opts;
  opts.strategy = RefinementStrategy::kDynamic;
  opts.sort_piece_threshold = 256;
  CrackingIndex index(&col, opts);
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    Value lo = rng.UniformRange(0, 1900);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, lo + 80}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, lo + 80));
  }
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(CrackingStrategyTest, StochasticAddsExtraCracks) {
  Column col = Column::UniqueRandom("A", 100000, 17);
  RangeOracle oracle(col);
  CrackingOptions plain;
  plain.crack_policy = CrackPolicy::kExact;
  CrackingOptions stoch;
  stoch.crack_policy = CrackPolicy::kDDR;
  stoch.policy_min_piece = 1024;
  CrackingIndex a(&col, plain);
  CrackingIndex b(&col, stoch);
  // Sequential (adversarial) workload.
  for (int i = 0; i < 30; ++i) {
    const Value lo = i * 3000;
    QueryContext ctx_a;
    QueryContext ctx_b;
    uint64_t ca;
    uint64_t cb;
    ASSERT_TRUE(a.RangeCount(ValueRange{lo, lo + 100}, &ctx_a, &ca).ok());
    ASSERT_TRUE(b.RangeCount(ValueRange{lo, lo + 100}, &ctx_b, &cb).ok());
    ASSERT_EQ(ca, oracle.Count(lo, lo + 100));
    ASSERT_EQ(cb, ca);
  }
  EXPECT_GT(b.NumCracks(), a.NumCracks());
  EXPECT_TRUE(b.ValidateStructure());
}

TEST(CrackingStrategyTest, GroupCrackSingleThreadedIsStandard) {
  Column col = Column::UniqueRandom("A", 2000, 18);
  CrackingOptions opts;
  opts.group_crack = true;
  CrackingIndex index(&col, opts);
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 900}, &ctx, &count).ok());
  EXPECT_EQ(count, 800u);
  EXPECT_TRUE(index.ValidateStructure());
}

TEST(CrackingStrategyTest, SwapBoundDisabledStillCorrect) {
  Column col = Column::UniqueRandom("A", 2000, 19);
  RangeOracle oracle(col);
  CrackingOptions opts;
  opts.swap_bound_on_conflict = false;
  CrackingIndex index(&col, opts);
  Rng rng(20);
  for (int i = 0; i < 50; ++i) {
    Value lo = rng.UniformRange(0, 1900);
    QueryContext ctx;
    uint64_t count;
    ASSERT_TRUE(index.RangeCount(ValueRange{lo, lo + 70}, &ctx, &count).ok());
    ASSERT_EQ(count, oracle.Count(lo, lo + 70));
  }
}

// ----------------------------------------- Lock-manager conflict probe

TEST(CrackingLockTest, UserLockForcesScanFallback) {
  Column col = Column::UniqueRandom("A", 2000, 21);
  RangeOracle oracle(col);
  LockManager lm;
  CrackingOptions opts;
  opts.lock_manager = &lm;
  opts.lock_resource = "R/A";
  CrackingIndex index(&col, opts);

  // A user transaction holds S on the column: refinement must be skipped
  // ("the query can simply forgo the index optimization"), but answers stay
  // correct via scanning.
  ASSERT_TRUE(lm.Acquire(99, "R/A", LockMode::kS).ok());
  QueryContext ctx;
  ctx.txn_id = 1;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{500, 900}, &ctx, &count).ok());
  EXPECT_EQ(count, oracle.Count(500, 900));
  EXPECT_TRUE(ctx.stats.refinement_skipped);
  EXPECT_EQ(index.NumCracks(), 0u);

  // After the user transaction commits, refinement resumes.
  lm.ReleaseAll(99);
  QueryContext ctx2;
  ctx2.txn_id = 2;
  ASSERT_TRUE(index.RangeCount(ValueRange{500, 900}, &ctx2, &count).ok());
  EXPECT_EQ(count, oracle.Count(500, 900));
  EXPECT_FALSE(ctx2.stats.refinement_skipped);
  EXPECT_GT(index.NumCracks(), 0u);
}

TEST(CrackingLockTest, IntentionLockDoesNotBlockRefinement) {
  Column col = Column::UniqueRandom("A", 1000, 22);
  LockManager lm;
  CrackingOptions opts;
  opts.lock_manager = &lm;
  opts.lock_resource = "R/A";
  CrackingIndex index(&col, opts);
  ASSERT_TRUE(lm.Acquire(99, "S/B", LockMode::kX).ok());  // unrelated
  QueryContext ctx;
  uint64_t count;
  ASSERT_TRUE(index.RangeCount(ValueRange{100, 200}, &ctx, &count).ok());
  EXPECT_FALSE(ctx.stats.refinement_skipped);
  EXPECT_GT(index.NumCracks(), 0u);
  lm.ReleaseAll(99);
}

// ----------------------------------------------------------- Naming

TEST(CrackingIndexTest, NameReflectsOptions) {
  Column col("A", {1});
  CrackingOptions opts;
  opts.name = "crack-piece-mo";
  CrackingIndex index(&col, opts);
  EXPECT_EQ(index.Name(), "crack-piece-mo");
  EXPECT_EQ(index.options().mode, ConcurrencyMode::kPieceLatch);
}

TEST(CrackingIndexTest, ConcurrencyModeToString) {
  EXPECT_EQ(ToString(ConcurrencyMode::kNone), "none");
  EXPECT_EQ(ToString(ConcurrencyMode::kColumnLatch), "column-latch");
  EXPECT_EQ(ToString(ConcurrencyMode::kPieceLatch), "piece-latch");
}

TEST(RefinementPolicyTest, StrategyDirectives) {
  RefinementPolicy standard(RefinementStrategy::kStandard, 128);
  EXPECT_FALSE(standard.OnCrack(1000).try_only);
  EXPECT_FALSE(standard.OnCrack(10).sort_piece);

  RefinementPolicy lazy(RefinementStrategy::kLazy, 128);
  EXPECT_TRUE(lazy.OnCrack(1000).try_only);

  RefinementPolicy active(RefinementStrategy::kActive, 128);
  EXPECT_TRUE(active.OnCrack(100).sort_piece);
  EXPECT_FALSE(active.OnCrack(1000).sort_piece);
}

TEST(RefinementPolicyTest, DynamicReactsToContention) {
  RefinementPolicy dynamic(RefinementStrategy::kDynamic, 128);
  // Initially calm: behaves actively on small pieces.
  EXPECT_TRUE(dynamic.OnCrack(64).sort_piece);
  for (int i = 0; i < 200; ++i) dynamic.OnConflict();
  EXPECT_GT(dynamic.ContentionScore(), 0.25);
  EXPECT_TRUE(dynamic.OnCrack(1 << 20).try_only);
  for (int i = 0; i < 2000; ++i) dynamic.OnSuccess();
  EXPECT_LT(dynamic.ContentionScore(), 0.05);
  EXPECT_FALSE(dynamic.OnCrack(1 << 20).try_only);
}

TEST(RefinementPolicyTest, ToStringNames) {
  EXPECT_EQ(ToString(RefinementStrategy::kStandard), "standard");
  EXPECT_EQ(ToString(RefinementStrategy::kLazy), "lazy");
  EXPECT_EQ(ToString(RefinementStrategy::kActive), "active");
  EXPECT_EQ(ToString(RefinementStrategy::kDynamic), "dynamic");
}

}  // namespace
}  // namespace adaptidx
