/// \file Micro-benchmarks (google-benchmark) for the hot kernels:
///  - crack-in-two / crack-in-three on both cracker-array layouts
///    (Figure 7's representation question),
///  - the scan fallback kernels,
///  - latch acquire/release cost (the per-operation ingredient of the
///    Figure 13 overhead),
///  - AVL table-of-contents lookups.

#include <benchmark/benchmark.h>

#include "cracking/avl_tree.h"
#include "cracking/cracker_array.h"
#include "latch/wait_queue_latch.h"
#include "storage/column.h"
#include "util/rng.h"

namespace adaptidx {
namespace {

constexpr size_t kRows = 1 << 20;

ArrayLayout LayoutArg(int64_t a) {
  return a == 0 ? ArrayLayout::kRowIdValuePairs : ArrayLayout::kPairOfArrays;
}

void BM_CrackInTwo(benchmark::State& state) {
  Column col = Column::UniqueRandom("A", kRows, 3);
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    CrackerArray arr(col, LayoutArg(state.range(0)));
    const Value pivot = rng.UniformRange(0, kRows);
    state.ResumeTiming();
    benchmark::DoNotOptimize(arr.CrackTwo(0, kRows, pivot));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}
BENCHMARK(BM_CrackInTwo)->Arg(0)->Arg(1)->ArgName("layout")
    ->Unit(benchmark::kMillisecond);

void BM_CrackInThree(benchmark::State& state) {
  Column col = Column::UniqueRandom("A", kRows, 5);
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    CrackerArray arr(col, LayoutArg(state.range(0)));
    Value lo = rng.UniformRange(0, kRows);
    Value hi = rng.UniformRange(0, kRows);
    if (lo > hi) std::swap(lo, hi);
    state.ResumeTiming();
    benchmark::DoNotOptimize(arr.CrackThree(0, kRows, lo, hi));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}
BENCHMARK(BM_CrackInThree)->Arg(0)->Arg(1)->ArgName("layout")
    ->Unit(benchmark::kMillisecond);

void BM_TwoCracksVsThree(benchmark::State& state) {
  // Cost of crack-in-three's single pass vs two crack-in-two passes.
  Column col = Column::UniqueRandom("A", kRows, 7);
  for (auto _ : state) {
    state.PauseTiming();
    CrackerArray arr(col, ArrayLayout::kPairOfArrays);
    state.ResumeTiming();
    const Position p = arr.CrackTwo(0, kRows, kRows / 3);
    benchmark::DoNotOptimize(arr.CrackTwo(p, kRows, 2 * kRows / 3));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}
BENCHMARK(BM_TwoCracksVsThree)->Unit(benchmark::kMillisecond);

void BM_ScanCount(benchmark::State& state) {
  Column col = Column::UniqueRandom("A", kRows, 9);
  CrackerArray arr(col, LayoutArg(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        arr.ScanCountRange(0, kRows, kRows / 4, kRows / 2));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}
BENCHMARK(BM_ScanCount)->Arg(0)->Arg(1)->ArgName("layout")
    ->Unit(benchmark::kMillisecond);

void BM_PositionalSum(benchmark::State& state) {
  Column col = Column::UniqueRandom("A", kRows, 10);
  CrackerArray arr(col, LayoutArg(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.PositionalSumRange(0, kRows));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRows);
}
BENCHMARK(BM_PositionalSum)->Arg(0)->Arg(1)->ArgName("layout")
    ->Unit(benchmark::kMillisecond);

void BM_LatchUncontendedWrite(benchmark::State& state) {
  WaitQueueLatch latch;
  for (auto _ : state) {
    latch.WriteLock(0);
    latch.WriteUnlock();
  }
}
BENCHMARK(BM_LatchUncontendedWrite);

void BM_LatchUncontendedRead(benchmark::State& state) {
  WaitQueueLatch latch;
  for (auto _ : state) {
    latch.ReadLock();
    latch.ReadUnlock();
  }
}
BENCHMARK(BM_LatchUncontendedRead);

void BM_LatchInstrumentedWrite(benchmark::State& state) {
  WaitQueueLatch latch;
  LatchStats stats;
  int64_t wait = 0;
  uint64_t conflicts = 0;
  LatchAcquireContext ctx{&stats, &wait, &conflicts};
  for (auto _ : state) {
    latch.WriteLock(0, ctx);
    latch.WriteUnlock();
  }
}
BENCHMARK(BM_LatchInstrumentedWrite);

void BM_AvlLookup(benchmark::State& state) {
  AvlTree tree;
  const size_t cracks = static_cast<size_t>(state.range(0));
  Rng rng(21);
  while (tree.size() < cracks) {
    const Value v = rng.UniformRange(0, 1 << 26);
    tree.Insert(v, static_cast<Position>(v));
  }
  Value probe = 1;
  for (auto _ : state) {
    AvlTree::Entry e;
    benchmark::DoNotOptimize(tree.Floor(probe, &e));
    probe = (probe * 2862933555777941757ULL + 3037000493ULL) & ((1 << 26) - 1);
  }
}
BENCHMARK(BM_AvlLookup)->Arg(64)->Arg(1024)->Arg(16384)->ArgName("cracks");

void BM_AvlInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    AvlTree tree;
    Rng rng(23);
    state.ResumeTiming();
    for (int i = 0; i < 1024; ++i) {
      const Value v = rng.UniformRange(0, 1 << 26);
      tree.Insert(v, static_cast<Position>(v));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AvlInsert)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace adaptidx
