#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/file_io.h"
#include "storage/table.h"

namespace adaptidx {
namespace {

// --------------------------------------------------------------- Column

TEST(ColumnTest, EmptyColumn) {
  Column c("a");
  EXPECT_EQ(c.name(), "a");
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.empty());
}

TEST(ColumnTest, AppendAndAccess) {
  Column c("a");
  c.Append(5);
  c.Append(7);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 5);
  EXPECT_EQ(c[1], 7);
}

TEST(ColumnTest, ConstructFromVector) {
  Column c("a", {3, 1, 2});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2], 2);
}

TEST(ColumnTest, UniqueRandomIsPermutation) {
  Column c = Column::UniqueRandom("a", 1000, 42);
  ASSERT_EQ(c.size(), 1000u);
  std::set<Value> seen(c.values().begin(), c.values().end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 999);
}

TEST(ColumnTest, UniqueRandomIsNotSorted) {
  Column c = Column::UniqueRandom("a", 1000, 42);
  EXPECT_FALSE(std::is_sorted(c.values().begin(), c.values().end()));
}

TEST(ColumnTest, UniqueRandomDeterministicBySeed) {
  Column a = Column::UniqueRandom("a", 100, 7);
  Column b = Column::UniqueRandom("b", 100, 7);
  EXPECT_EQ(a.values(), b.values());
  Column c = Column::UniqueRandom("c", 100, 8);
  EXPECT_NE(a.values(), c.values());
}

TEST(ColumnTest, UniformRandomRespectsBounds) {
  Column c = Column::UniformRandom("a", 500, -10, 10, 3);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_GE(c[i], -10);
    EXPECT_LT(c[i], 10);
  }
}

TEST(ColumnTest, SequentialIsSorted) {
  Column c = Column::Sequential("a", 100);
  EXPECT_TRUE(std::is_sorted(c.values().begin(), c.values().end()));
  EXPECT_EQ(c[0], 0);
  EXPECT_EQ(c[99], 99);
}

// ---------------------------------------------------------------- Table

TEST(TableTest, EmptyTable) {
  Table t("R");
  EXPECT_EQ(t.name(), "R");
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 0u);
}

TEST(TableTest, AddAndLookupColumns) {
  Table t("R");
  ASSERT_TRUE(t.AddColumn(Column("A", {1, 2, 3})).ok());
  ASSERT_TRUE(t.AddColumn(Column("B", {4, 5, 6})).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  ASSERT_NE(t.GetColumn("A"), nullptr);
  ASSERT_NE(t.GetColumn("B"), nullptr);
  EXPECT_EQ(t.GetColumn("C"), nullptr);
  EXPECT_EQ((*t.GetColumn("B"))[1], 5);
}

TEST(TableTest, ColumnsMustAlign) {
  Table t("R");
  ASSERT_TRUE(t.AddColumn(Column("A", {1, 2, 3})).ok());
  Status s = t.AddColumn(Column("B", {4, 5}));
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(t.num_columns(), 1u);
}

TEST(TableTest, DuplicateColumnNameRejected) {
  Table t("R");
  ASSERT_TRUE(t.AddColumn(Column("A", {1})).ok());
  EXPECT_TRUE(t.AddColumn(Column("A", {2})).IsInvalidArgument());
}

TEST(TableTest, PositionalAlignment) {
  // All attribute values of tuple i appear at position i (Section 5.1).
  Table t("R");
  ASSERT_TRUE(t.AddColumn(Column("A", {10, 20, 30})).ok());
  ASSERT_TRUE(t.AddColumn(Column("B", {11, 21, 31})).ok());
  for (Position i = 0; i < 3; ++i) {
    EXPECT_EQ((*t.GetColumn("B"))[i], (*t.GetColumn("A"))[i] + 1);
  }
}

TEST(TableTest, GetColumnAtOrdinal) {
  Table t("R");
  ASSERT_TRUE(t.AddColumn(Column("A", {1})).ok());
  ASSERT_TRUE(t.AddColumn(Column("B", {2})).ok());
  EXPECT_EQ(t.GetColumnAt(0)->name(), "A");
  EXPECT_EQ(t.GetColumnAt(1)->name(), "B");
  EXPECT_EQ(t.GetColumnAt(2), nullptr);
}

TEST(TableTest, ColumnNamesInOrder) {
  Table t("R");
  ASSERT_TRUE(t.AddColumn(Column("A", {1})).ok());
  ASSERT_TRUE(t.AddColumn(Column("B", {2})).ok());
  EXPECT_EQ(t.ColumnNames(), (std::vector<std::string>{"A", "B"}));
}

// -------------------------------------------------------------- Catalog

TEST(CatalogTest, AddAndGetTable) {
  Catalog cat;
  auto t = std::make_unique<Table>("R");
  ASSERT_TRUE(cat.AddTable(std::move(t)).ok());
  EXPECT_NE(cat.GetTable("R"), nullptr);
  EXPECT_EQ(cat.GetTable("S"), nullptr);
  EXPECT_EQ(cat.num_tables(), 1u);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(std::make_unique<Table>("R")).ok());
  EXPECT_TRUE(cat.AddTable(std::make_unique<Table>("R")).IsInvalidArgument());
}

TEST(CatalogTest, IndexEntryCreateOnce) {
  Catalog cat;
  int created = 0;
  auto factory = [&created]() -> std::shared_ptr<void> {
    ++created;
    return std::make_shared<int>(42);
  };
  auto a = cat.GetOrCreateIndexEntry("R/A", factory);
  auto b = cat.GetOrCreateIndexEntry("R/A", factory);
  EXPECT_EQ(created, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cat.num_indexes(), 1u);
}

TEST(CatalogTest, IndexEntryLookup) {
  Catalog cat;
  EXPECT_EQ(cat.GetIndexEntry("missing"), nullptr);
  cat.GetOrCreateIndexEntry("R/A",
                            [] { return std::make_shared<int>(1); });
  EXPECT_NE(cat.GetIndexEntry("R/A"), nullptr);
}

TEST(CatalogTest, DropIndexEntry) {
  Catalog cat;
  cat.GetOrCreateIndexEntry("R/A",
                            [] { return std::make_shared<int>(1); });
  EXPECT_TRUE(cat.DropIndexEntry("R/A"));
  EXPECT_FALSE(cat.DropIndexEntry("R/A"));
  EXPECT_EQ(cat.GetIndexEntry("R/A"), nullptr);
}

TEST(CatalogTest, EntriesKeepAliveViaSharedPtr) {
  Catalog cat;
  auto entry = cat.GetOrCreateIndexEntry(
      "R/A", [] { return std::make_shared<int>(7); });
  ASSERT_TRUE(cat.DropIndexEntry("R/A"));
  // Dropped from the catalog, but our reference still works ("adaptive
  // indexes can be dropped at any time" without invalidating running
  // queries).
  EXPECT_EQ(*std::static_pointer_cast<int>(entry), 7);
}

// -------------------------------------------------- durability primitives

class FileIoDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("adaptidx_fileio_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  std::filesystem::path dir_;
};

TEST_F(FileIoDurabilityTest, AtomicWriteCreatesFile) {
  const std::string path = (dir_ / "image").string();
  const std::string data = "checkpoint-bytes";
  ASSERT_TRUE(AtomicWriteFile(path, data.data(), data.size()).ok());
  EXPECT_EQ(ReadAll(path), data);
}

TEST_F(FileIoDurabilityTest, AtomicWriteReplacesWholeContent) {
  const std::string path = (dir_ / "image").string();
  const std::string big(1024, 'x');
  ASSERT_TRUE(AtomicWriteFile(path, big.data(), big.size()).ok());
  // A shorter rewrite must fully replace, never leave a suffix of the old
  // content (truncate-in-place would; rename guarantees it cannot).
  const std::string small = "tiny";
  ASSERT_TRUE(AtomicWriteFile(path, small.data(), small.size()).ok());
  EXPECT_EQ(ReadAll(path), small);
}

TEST_F(FileIoDurabilityTest, AtomicWriteLeavesNoTempBehind) {
  const std::string path = (dir_ / "image").string();
  ASSERT_TRUE(AtomicWriteFile(path, "d", 1).ok());
  size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(FileIoDurabilityTest, AtomicWriteEmptyPayload) {
  const std::string path = (dir_ / "empty").string();
  ASSERT_TRUE(AtomicWriteFile(path, nullptr, 0).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
}

TEST_F(FileIoDurabilityTest, AtomicWriteToMissingDirFails) {
  const std::string path = (dir_ / "no-such-subdir" / "image").string();
  EXPECT_FALSE(AtomicWriteFile(path, "d", 1).ok());
}

TEST_F(FileIoDurabilityTest, SyncPathOnFileAndDirectory) {
  const std::string path = (dir_ / "f").string();
  ASSERT_TRUE(AtomicWriteFile(path, "d", 1).ok());
  EXPECT_TRUE(SyncPath(path).ok());
  EXPECT_TRUE(SyncPath(dir_.string()).ok());
}

TEST_F(FileIoDurabilityTest, SyncPathMissingFileIsNotFound) {
  Status s = SyncPath((dir_ / "missing").string());
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(FileIoDurabilityTest, SyncFdOnOpenFile) {
  const std::string path = (dir_ / "f").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("payload", f);
  std::fflush(f);
  EXPECT_TRUE(SyncFd(fileno(f)).ok());
  std::fclose(f);
}

TEST_F(FileIoDurabilityTest, SyncFdBadDescriptorFails) {
  EXPECT_FALSE(SyncFd(-1).ok());
}

}  // namespace
}  // namespace adaptidx
