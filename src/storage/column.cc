#include "storage/column.h"

#include <numeric>

namespace adaptidx {

Column Column::UniqueRandom(std::string name, size_t n, uint64_t seed) {
  std::vector<Value> values(n);
  std::iota(values.begin(), values.end(), static_cast<Value>(0));
  Rng rng(seed);
  rng.Shuffle(&values);
  return Column(std::move(name), std::move(values));
}

Column Column::UniformRandom(std::string name, size_t n, Value lo, Value hi,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(rng.UniformRange(lo, hi));
  }
  return Column(std::move(name), std::move(values));
}

Column Column::Sequential(std::string name, size_t n) {
  std::vector<Value> values(n);
  std::iota(values.begin(), values.end(), static_cast<Value>(0));
  return Column(std::move(name), std::move(values));
}

}  // namespace adaptidx
