#ifndef ADAPTIDX_ENGINE_OPERATORS_H_
#define ADAPTIDX_ENGINE_OPERATORS_H_

#include <cstdint>
#include <vector>

#include "core/adaptive_index.h"
#include "core/query.h"
#include "storage/column.h"
#include "workload/workload.h"

namespace adaptidx {

/// \brief Bulk select-(project)-aggregate execution of one workload query
/// over an index — a thin lift of `RangeQuery` onto the index's unified
/// `Execute` entry point (the per-kind dispatch lives inside the index).
Status ExecuteQuery(AdaptiveIndex* index, const RangeQuery& query,
                    QueryContext* ctx, QueryResult* result);

/// \brief Index-free oracle over the base column for any query kind
/// (kSumOther aggregates `agg` — pass the second column; null otherwise);
/// used to verify results in tests and examples.
QueryResult OracleExecute(const Column& column, const Query& query,
                          const Column* agg = nullptr);

/// \brief Workload-query oracle (count/sum/minmax template).
QueryResult OracleExecute(const Column& column, const RangeQuery& query);

/// \brief The two-column plan of Figure 6: `select sum(B) from R where
/// lo <= A < hi`. The index on A materializes qualifying rowIDs (select
/// operator); the aggregation fetches B positionally (fetch + sum
/// operators). B must be aligned with A's base column.
Status FetchSum(AdaptiveIndex* a_index, const Column& b_column,
                const RangeQuery& query, QueryContext* ctx, int64_t* sum);

/// \brief Oracle for FetchSum.
int64_t OracleFetchSum(const Column& a_column, const Column& b_column,
                       const RangeQuery& query);

}  // namespace adaptidx

#endif  // ADAPTIDX_ENGINE_OPERATORS_H_
