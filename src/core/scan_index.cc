#include "core/scan_index.h"

#include "util/stopwatch.h"

namespace adaptidx {

Status ScanIndex::RangeCount(const ValueRange& range, QueryContext* ctx,
                             uint64_t* count) {
  ScopedTimer read_timer(&ctx->stats.read_ns);
  const Value* data = column_->data();
  const size_t n = column_->size();
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = data[i];
    c += (v >= range.lo && v < range.hi) ? 1 : 0;
  }
  *count = c;
  return Status::OK();
}

Status ScanIndex::RangeSum(const ValueRange& range, QueryContext* ctx,
                           int64_t* sum) {
  ScopedTimer read_timer(&ctx->stats.read_ns);
  const Value* data = column_->data();
  const size_t n = column_->size();
  int64_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = data[i];
    if (v >= range.lo && v < range.hi) s += v;
  }
  *sum = s;
  return Status::OK();
}

Status ScanIndex::RangeRowIds(const ValueRange& range, QueryContext* ctx,
                              std::vector<RowId>* row_ids) {
  ScopedTimer read_timer(&ctx->stats.read_ns);
  const Value* data = column_->data();
  const size_t n = column_->size();
  row_ids->clear();
  for (size_t i = 0; i < n; ++i) {
    const Value v = data[i];
    if (v >= range.lo && v < range.hi) {
      row_ids->push_back(static_cast<RowId>(i));
    }
  }
  return Status::OK();
}

}  // namespace adaptidx
